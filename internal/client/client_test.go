package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"gskew/internal/api"
)

// Every stable error code the server can emit, with the status it
// travels on. The client must decode each envelope back into a typed
// *api.Error carrying exactly this code — this is the client half of
// the error contract (the server half lives in internal/server's
// handler tests, which assert the same codes on the wire).
var wireErrors = []struct {
	code   string
	status int
}{
	{api.CodeBadRequest, http.StatusBadRequest},
	{api.CodeBadSpec, http.StatusBadRequest},
	{api.CodeBadWorkload, http.StatusBadRequest},
	{api.CodeBadTrace, http.StatusBadRequest},
	{api.CodeNoSuchTrace, http.StatusNotFound},
	{api.CodeNoSuchSession, http.StatusNotFound},
	{api.CodeSessionConflict, http.StatusConflict},
	{api.CodeQueueFull, http.StatusServiceUnavailable},
	{api.CodeBodyTooLarge, http.StatusRequestEntityTooLarge},
	{api.CodeNoSuchCell, http.StatusNotFound},
	{api.CodeWrongOwner, http.StatusMisdirectedRequest},
	{api.CodeInternal, http.StatusInternalServerError},
}

// envelopeServer returns a server that answers every request with the
// given envelope.
func envelopeServer(t *testing.T, status int, code string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{
			Error: api.Error{Code: code, Message: "synthetic " + code},
		})
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestDecodeEveryStableCode: each wire envelope comes back as a typed
// *api.Error with the matching code and the transport status, through
// every decode path (typed response, raw response, GET, POST, DELETE).
func TestDecodeEveryStableCode(t *testing.T) {
	ctx := context.Background()
	for _, tc := range wireErrors {
		t.Run(tc.code, func(t *testing.T) {
			srv := envelopeServer(t, tc.status, tc.code)
			// WithRetries(1): 503-class codes must surface, not retry,
			// for this decoding test.
			c := New(srv.URL, WithRetries(1))

			_, err := c.Simulate(ctx, &api.SimulateRequest{Specs: []string{"gshare:n=8,k=6"}})
			if err == nil {
				t.Fatal("Simulate returned nil error for a non-2xx response")
			}
			if !api.IsCode(err, tc.code) {
				t.Fatalf("Simulate error code = %q, want %q (err: %v)", api.ErrCode(err), tc.code, err)
			}
			var ae *api.Error
			if !errors.As(err, &ae) {
				t.Fatalf("Simulate error is not an *api.Error: %T", err)
			}
			if ae.Status != tc.status {
				t.Errorf("decoded Status = %d, want %d", ae.Status, tc.status)
			}
			if ae.Message != "synthetic "+tc.code {
				t.Errorf("decoded Message = %q, want the envelope message", ae.Message)
			}

			// The same envelope decodes identically on the other verbs
			// and the raw-body paths.
			if _, _, err := c.SimulateRaw(ctx, &api.SimulateRequest{}); !api.IsCode(err, tc.code) {
				t.Errorf("SimulateRaw error code = %q, want %q", api.ErrCode(err), tc.code)
			}
			if _, err := c.Health(ctx); !api.IsCode(err, tc.code) {
				t.Errorf("Health error code = %q, want %q", api.ErrCode(err), tc.code)
			}
			if _, err := c.GetTrace(ctx, "deadbeef"); !api.IsCode(err, tc.code) {
				t.Errorf("GetTrace error code = %q, want %q", api.ErrCode(err), tc.code)
			}
			if _, err := c.EndSession(ctx, "s1"); !api.IsCode(err, tc.code) {
				t.Errorf("EndSession error code = %q, want %q", api.ErrCode(err), tc.code)
			}
			if _, err := c.CellGet(ctx, "k1"); !api.IsCode(err, tc.code) {
				t.Errorf("CellGet error code = %q, want %q", api.ErrCode(err), tc.code)
			}
		})
	}
}

// TestDecodeNonEnvelopeBody: a non-2xx response without a decodable
// envelope maps to CodeUnknown with the body as the message — the
// signature of a non-conforming endpoint, never of predserved itself.
func TestDecodeNonEnvelopeBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text panic page", http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	c := New(srv.URL, WithRetries(1))
	_, err := c.Health(context.Background())
	if !api.IsCode(err, api.CodeUnknown) {
		t.Fatalf("error code = %q, want %q", api.ErrCode(err), api.CodeUnknown)
	}
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error is not an *api.Error: %T", err)
	}
	if ae.Status != http.StatusInternalServerError {
		t.Errorf("Status = %d, want 500", ae.Status)
	}
	if ae.Message != "plain text panic page" {
		t.Errorf("Message = %q, want the raw body", ae.Message)
	}
}

// TestRetryOnQueueFull: a queue_full (503) response is retried and a
// later success wins — the retried request observes the full attempt
// budget, not the first failure.
func TestRetryOnQueueFull(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{
				Error: api.Error{Code: api.CodeQueueFull, Message: "saturated"},
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.Health{Status: "ok"})
	}))
	t.Cleanup(srv.Close)

	c := New(srv.URL, WithRetries(3), WithBackoff(time.Millisecond))
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health after retries: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("Status = %q, want ok", h.Status)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3 (two retried failures + success)", n)
	}
}

// TestRetryBudgetExhausted: when every attempt fails retryably, the
// final typed error still carries the stable code from the last
// envelope.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := envelopeServer(t, http.StatusServiceUnavailable, api.CodeQueueFull)
	base := srv.Config.Handler
	srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		base.ServeHTTP(w, r)
	})

	c := New(srv.URL, WithRetries(3), WithBackoff(time.Millisecond))
	_, err := c.Health(context.Background())
	if !api.IsCode(err, api.CodeQueueFull) {
		t.Fatalf("error code = %q, want %q (err: %v)", api.ErrCode(err), api.CodeQueueFull, err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want the full attempt budget of 3", n)
	}
}

// TestNonRetryableNotRetried: a 400-class error consumes exactly one
// attempt — retrying a bad_spec would never help.
func TestNonRetryableNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.ErrorEnvelope{
			Error: api.Error{Code: api.CodeBadSpec, Message: "no such family"},
		})
	}))
	t.Cleanup(srv.Close)

	c := New(srv.URL, WithRetries(3), WithBackoff(time.Millisecond))
	_, err := c.Simulate(context.Background(), &api.SimulateRequest{Specs: []string{"nope"}})
	if !api.IsCode(err, api.CodeBadSpec) {
		t.Fatalf("error code = %q, want %q", api.ErrCode(err), api.CodeBadSpec)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d calls, want 1 (4xx is not retryable)", n)
	}
}

// TestSimulateRawCacheStats: the X-Cache response header parses into
// CacheStats alongside the exact body bytes.
func TestSimulateRawCacheStats(t *testing.T) {
	const body = `{"results":[]}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cache", "hits=7 misses=2")
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	t.Cleanup(srv.Close)

	c := New(srv.URL)
	data, cs, err := c.SimulateRaw(context.Background(), &api.SimulateRequest{})
	if err != nil {
		t.Fatalf("SimulateRaw: %v", err)
	}
	if string(data) != body {
		t.Errorf("body = %q, want the exact response bytes %q", data, body)
	}
	if cs.Hits != 7 || cs.Misses != 2 {
		t.Errorf("CacheStats = %+v, want {Hits:7 Misses:2}", cs)
	}
}

// TestContextCancellation: a context cancelled mid-backoff aborts the
// retry loop promptly instead of sleeping out the budget.
func TestContextCancellation(t *testing.T) {
	srv := envelopeServer(t, http.StatusServiceUnavailable, api.CodeQueueFull)
	c := New(srv.URL, WithRetries(10), WithBackoff(time.Hour))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Health(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt land and the backoff start
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Health returned nil error after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Health did not return after context cancellation")
	}
}
