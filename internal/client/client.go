// Package client is the typed Go client of the prediction service:
// the one place HTTP requests to predserved are constructed. The load
// generator (cmd/predload), the cluster peer-fill path
// (internal/cluster), the smoke scripts (through predload's
// subcommands) and the server's own tests all go through it, so the
// wire contract (internal/api) has exactly one encoder and one
// decoder on the client side.
//
// Every method takes a context (cancellation and deadlines propagate
// into the HTTP round trip) and surfaces non-2xx responses as typed
// *api.Error values carrying the stable machine-readable code from
// the error envelope:
//
//	c := client.New("http://127.0.0.1:8149")
//	resp, err := c.Simulate(ctx, &api.SimulateRequest{...})
//	if api.IsCode(err, api.CodeBadSpec) { ... }
//
// Transient failures — transport errors and 502/503/504 statuses,
// notably api.CodeQueueFull — are retried with exponential backoff
// (every service request is idempotent by design: simulation cells
// are content-addressed and trace ingest deduplicates, so a retried
// request returns a byte-identical response). Retries respect the
// context; WithRetries(1) disables them.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"gskew/internal/api"
)

// Defaults for the retry policy.
const (
	DefaultAttempts = 3
	DefaultBackoff  = 50 * time.Millisecond
)

// Client talks to one predserved node.
type Client struct {
	base     string
	hc       *http.Client
	attempts int
	backoff  time.Duration
}

// Option adjusts a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client (custom
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets the total attempt budget per request (minimum 1 —
// i.e. no retries).
func WithRetries(attempts int) Option {
	return func(c *Client) { c.attempts = max(1, attempts) }
}

// WithBackoff sets the base backoff delay; it doubles per retry.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithTimeout bounds each HTTP round trip (on top of any context
// deadline).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) {
		hc := *c.hc
		hc.Timeout = d
		c.hc = &hc
	}
}

// New returns a client for the node at base (e.g.
// "http://127.0.0.1:8149"; a trailing slash is tolerated).
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:     strings.TrimRight(base, "/"),
		hc:       &http.Client{},
		attempts: DefaultAttempts,
		backoff:  DefaultBackoff,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the node base URL the client was built with.
func (c *Client) Base() string { return c.base }

// CacheStats is the parsed X-Cache response header of a sweep: how
// many of the request's cells were served from the store versus
// simulated (or peer-filled) on this request.
type CacheStats struct {
	Hits   int
	Misses int
}

// retryable reports whether a response status is worth retrying:
// gateway failures and an overfull simulation queue (503), which the
// server bounds with its own queue timeout.
func retryable(status int) bool {
	return status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// do performs one request with the retry policy and returns the raw
// response. Non-2xx responses come back as (status, body, header,
// nil); the caller decides whether that is an error (decodeErr).
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) (int, []byte, http.Header, error) {
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			delay := c.backoff << (attempt - 1)
			select {
			case <-ctx.Done():
				return 0, nil, nil, ctx.Err()
			case <-time.After(delay):
			}
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return 0, nil, nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return 0, nil, nil, err
			}
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if retryable(resp.StatusCode) && attempt < c.attempts-1 {
			lastErr = decodeErr(resp.StatusCode, data)
			continue
		}
		return resp.StatusCode, data, resp.Header, nil
	}
	return 0, nil, nil, fmt.Errorf("client: %s %s: %w", method, path, lastErr)
}

// decodeErr turns a non-2xx body into the typed error, preserving the
// stable code from the envelope. A body that does not carry a
// decodable envelope maps to api.CodeUnknown (never sent by the
// server, so its presence flags a non-conforming endpoint).
func decodeErr(status int, body []byte) *api.Error {
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		e := env.Error
		e.Status = status
		return &e
	}
	msg := strings.TrimSpace(string(body))
	if len(msg) > 512 {
		msg = msg[:512]
	}
	return &api.Error{Status: status, Code: api.CodeUnknown, Message: msg}
}

// roundTrip performs a request and decodes a 2xx JSON response into
// out (skipped when out is nil), mapping non-2xx to *api.Error.
func (c *Client) roundTrip(ctx context.Context, method, path, contentType string, body []byte, out any) (http.Header, error) {
	status, data, hdr, err := c.do(ctx, method, path, contentType, body)
	if err != nil {
		return nil, err
	}
	if status/100 != 2 {
		return hdr, decodeErr(status, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return hdr, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return hdr, nil
}

// postJSON marshals req and round-trips it.
func (c *Client) postJSON(ctx context.Context, path string, req, out any) (http.Header, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding %s request: %w", path, err)
	}
	return c.roundTrip(ctx, http.MethodPost, path, "application/json", body, out)
}

// Simulate runs a spec sweep over one workload.
func (c *Client) Simulate(ctx context.Context, req *api.SimulateRequest) (*api.SimulateResponse, error) {
	var resp api.SimulateResponse
	if _, err := c.postJSON(ctx, "/v1/simulate", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SimulateRaw runs a sweep and returns the exact response bytes plus
// the parsed cache stats — the byte-identity primitive the smoke
// scripts and the load generator are built on.
func (c *Client) SimulateRaw(ctx context.Context, req *api.SimulateRequest) ([]byte, CacheStats, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, CacheStats{}, fmt.Errorf("client: encoding /v1/simulate request: %w", err)
	}
	status, data, hdr, err := c.do(ctx, http.MethodPost, "/v1/simulate", "application/json", body)
	if err != nil {
		return nil, CacheStats{}, err
	}
	if status/100 != 2 {
		return nil, CacheStats{}, decodeErr(status, data)
	}
	var cs CacheStats
	fmt.Sscanf(hdr.Get("X-Cache"), "hits=%d misses=%d", &cs.Hits, &cs.Misses)
	return data, cs, nil
}

// Predict appends one batch of branches to a session-pinned predictor.
func (c *Client) Predict(ctx context.Context, req *api.PredictRequest) (*api.PredictResponse, error) {
	var resp api.PredictResponse
	if _, err := c.postJSON(ctx, "/v1/predict", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// EndSession releases a predict session's predictor state.
func (c *Client) EndSession(ctx context.Context, session string) (*api.SessionEndResponse, error) {
	var resp api.SessionEndResponse
	if _, err := c.roundTrip(ctx, http.MethodDelete, "/v1/predict/"+session, "", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// IngestTrace pools a raw binary trace (varint or columnar
// serialisation) and returns its content hash.
func (c *Client) IngestTrace(ctx context.Context, raw []byte) (*api.TraceIngestResponse, error) {
	var resp api.TraceIngestResponse
	if _, err := c.roundTrip(ctx, http.MethodPost, "/v1/traces", "application/octet-stream", raw, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// GetTrace fetches a pooled segment as canonical columnar bytes.
func (c *Client) GetTrace(ctx context.Context, hash string) ([]byte, error) {
	status, data, _, err := c.do(ctx, http.MethodGet, "/v1/traces/"+hash, "", nil)
	if err != nil {
		return nil, err
	}
	if status/100 != 2 {
		return nil, decodeErr(status, data)
	}
	return data, nil
}

// Specs fetches the grammar discovery document.
func (c *Client) Specs(ctx context.Context) (*api.SpecsResponse, error) {
	var resp api.SpecsResponse
	if _, err := c.roundTrip(ctx, http.MethodGet, "/v1/specs", "", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches the readiness document.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var resp api.Health
	if _, err := c.roundTrip(ctx, http.MethodGet, "/v1/health", "", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// MetricsRaw fetches the obs registry snapshot (the /metrics debug
// surface) as raw JSON. The snapshot is diagnostic, not part of the
// /v1 contract; smoke tooling reads counters out of it.
func (c *Client) MetricsRaw(ctx context.Context) ([]byte, error) {
	status, data, _, err := c.do(ctx, http.MethodGet, "/metrics", "", nil)
	if err != nil {
		return nil, err
	}
	if status/100 != 2 {
		return nil, decodeErr(status, data)
	}
	return data, nil
}

// Metric fetches one numeric metric by name from the snapshot
// (0 when absent — counters not yet incremented are indistinguishable
// from unregistered ones).
func (c *Client) Metric(ctx context.Context, name string) (int64, error) {
	data, err := c.MetricsRaw(ctx)
	if err != nil {
		return 0, err
	}
	// Histogram entries are objects; decode lazily so they don't break
	// scalar lookups.
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("client: decoding /metrics: %w", err)
	}
	raw, ok := snap[name]
	if !ok {
		return 0, nil
	}
	var n json.Number
	if err := json.Unmarshal(raw, &n); err != nil {
		return 0, fmt.Errorf("client: metric %s is not numeric: %s", name, raw)
	}
	v, err := n.Int64()
	if err != nil {
		f, ferr := n.Float64()
		if ferr != nil {
			return 0, fmt.Errorf("client: metric %s = %q is not numeric", name, n)
		}
		v = int64(f)
	}
	return v, nil
}

// CellGet asks this node — which should be the key's owner — for a
// stored simulation cell (cluster-internal peer-fill read).
func (c *Client) CellGet(ctx context.Context, key string) (*api.Cell, error) {
	var cell api.Cell
	if _, err := c.roundTrip(ctx, http.MethodGet, "/internal/v1/cells/"+key, "", nil, &cell); err != nil {
		return nil, err
	}
	return &cell, nil
}

// CellPut offers a freshly simulated cell to this node (cluster-
// internal replication write).
func (c *Client) CellPut(ctx context.Context, key string, cell *api.Cell) (*api.CellOfferResponse, error) {
	body, err := json.Marshal(cell)
	if err != nil {
		return nil, fmt.Errorf("client: encoding cell %s: %w", key, err)
	}
	var resp api.CellOfferResponse
	if _, err := c.roundTrip(ctx, http.MethodPut, "/internal/v1/cells/"+key, "application/json", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// InternalTraceGet fetches a pooled segment over the cluster-internal
// route (owner-forwarded trace-pool lookup).
func (c *Client) InternalTraceGet(ctx context.Context, hash string) ([]byte, error) {
	status, data, _, err := c.do(ctx, http.MethodGet, "/internal/v1/traces/"+hash, "", nil)
	if err != nil {
		return nil, err
	}
	if status/100 != 2 {
		return nil, decodeErr(status, data)
	}
	return data, nil
}

// Ring fetches this node's current ring view.
func (c *Client) Ring(ctx context.Context) (*api.RingInfo, error) {
	var resp api.RingInfo
	if _, err := c.roundTrip(ctx, http.MethodGet, "/internal/v1/ring", "", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SetTopology replaces this node's cluster topology (a resharding
// event; the caller delivers the same update to every node).
func (c *Client) SetTopology(ctx context.Context, upd *api.TopologyUpdate) (*api.RingInfo, error) {
	var resp api.RingInfo
	if _, err := c.postJSON(ctx, "/internal/v1/topology", upd, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Do is the raw escape hatch: one request with the client's transport
// and base URL but no retry policy, no envelope decoding and no body
// typing. Adversarial tests use it to send malformed bodies; smoke
// tooling uses it where exact response bytes matter for non-/v1
// paths. path must start with "/".
func (c *Client) Do(ctx context.Context, method, path, contentType string, body []byte) (int, []byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, data, resp.Header, nil
}
