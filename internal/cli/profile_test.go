package cli

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestProfileInactiveByDefault(t *testing.T) {
	var p Profile
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p.AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if p.Active() {
		t.Fatal("Active() = true with no flags set")
	}
	if err := p.Start(); err != nil {
		t.Fatalf("Start with no flags: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop with no flags: %v", err)
	}
}

func TestProfileWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	var p Profile
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	p.AddFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if !p.Active() {
		t.Fatal("Active() = false with both flags set")
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", path)
		}
	}

	// Stop must be idempotent: a second call is a no-op and must not
	// rewrite (or fail on) the already-written profiles.
	if err := p.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}
