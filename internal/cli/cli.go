// Package cli carries the shared scaffolding of the command-line
// tools: every tool implements a testable
//
//	run(args []string, stdout, stderr io.Writer) error
//
// and a one-line main that delegates to Main. Keeping main trivial
// lets each cmd package integration-test its own flag parsing, error
// paths and output in-process, without building or exec-ing binaries.
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

// RunFunc is the testable body of a command-line tool. It must write
// normal output to stdout and diagnostics to stderr, and return nil on
// success, a UsageError for bad invocations, or any other error for
// runtime failures. It must not call os.Exit.
type RunFunc func(args []string, stdout, stderr io.Writer) error

// UsageError marks an invocation error (bad flag, missing argument).
// Main exits with status 2 for these, matching the flag package's
// convention, versus 1 for runtime errors.
type UsageError struct {
	Err error
}

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{Err: fmt.Errorf(format, args...)}
}

// Error implements error.
func (u *UsageError) Error() string { return u.Err.Error() }

// Unwrap exposes the wrapped error.
func (u *UsageError) Unwrap() error { return u.Err }

// Main runs fn with the process arguments and standard streams and
// exits with the conventional status: 0 on success, 2 on usage errors
// (including flag-parse failures and -h, which the flag package
// reports as flag.ErrHelp after printing usage itself), 1 otherwise.
func Main(name string, fn RunFunc) {
	err := fn(os.Args[1:], os.Stdout, os.Stderr)
	if err == nil {
		return
	}
	if errors.Is(err, flag.ErrHelp) {
		os.Exit(2)
	}
	var usage *UsageError
	if errors.As(err, &usage) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	os.Exit(1)
}

// NewFlagSet returns a flag set wired for in-process use: errors are
// returned (not fatal) and usage text goes to stderr.
func NewFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}
