package cli

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestUsagefWrapsAndUnwraps(t *testing.T) {
	base := fmt.Errorf("missing -bench")
	err := Usagef("bad invocation: %w", base)
	var usage *UsageError
	if !errors.As(err, &usage) {
		t.Fatalf("Usagef did not produce a UsageError: %T", err)
	}
	if !errors.Is(err, base) {
		t.Error("UsageError does not unwrap to the wrapped error")
	}
	if got := err.Error(); !strings.Contains(got, "missing -bench") {
		t.Errorf("message lost in wrapping: %q", got)
	}
}

func TestWrappedUsageErrorIsStillClassified(t *testing.T) {
	// Tools wrap usage errors with context (fmt.Errorf("%s: %w", ...));
	// classification must survive the wrapping.
	err := fmt.Errorf("predsim: %w", Usagef("unknown predictor"))
	var usage *UsageError
	if !errors.As(err, &usage) {
		t.Fatal("wrapped UsageError lost its classification")
	}
}

func TestNewFlagSetReturnsErrorsInProcess(t *testing.T) {
	var stderr bytes.Buffer
	fs := NewFlagSet("tool", &stderr)
	fs.Bool("x", false, "a flag")
	if err := fs.Parse([]string{"-no-such"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if !strings.Contains(stderr.String(), "-x") {
		t.Errorf("usage text not routed to the given stderr: %q", stderr.String())
	}
}
