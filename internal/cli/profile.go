package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile bundles the standard -cpuprofile/-memprofile plumbing so
// every tool exposes the same profiling interface. Typical use:
//
//	var prof cli.Profile
//	prof.AddFlags(fs)
//	fs.Parse(args)
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
//
// Stop is idempotent, so error paths that exit early can call it
// unconditionally.
type Profile struct {
	cpuPath string
	memPath string
	cpuFile *os.File
}

// AddFlags registers the profiling flags on fs.
func (p *Profile) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.cpuPath, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&p.memPath, "memprofile", "", "write a heap profile to `file` on exit")
}

// Active reports whether any profiling flag was set.
func (p *Profile) Active() bool { return p.cpuPath != "" || p.memPath != "" }

// Start begins CPU profiling if -cpuprofile was given. It is a no-op
// otherwise.
func (p *Profile) Start() error {
	if p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return fmt.Errorf("cli: creating CPU profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("cli: starting CPU profile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile, if the
// corresponding flags were given. Calling it more than once (or
// without Start) is safe.
func (p *Profile) Stop() error {
	var firstErr error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			firstErr = fmt.Errorf("cli: closing CPU profile: %w", err)
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cli: creating heap profile: %w", err)
			}
		} else {
			runtime.GC() // capture the settled heap, not allocation noise
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cli: writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cli: closing heap profile: %w", err)
			}
		}
		p.memPath = "" // idempotence: write the heap profile once
	}
	return firstErr
}
