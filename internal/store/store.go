// Package store is the content-addressed run cache behind the
// simulation service: simulation results keyed by SHA-256 of the cell
// that produced them — the canonical predictor spec string, the trace
// content hash (see trace.HashBranches) and the result-relevant subset
// of sim.Options — so any client re-running an identical (spec, trace,
// options) cell anywhere gets the stored result, bit-identical to a
// fresh simulation.
//
// The store is two-tiered: a fixed-capacity in-memory LRU tier (built
// on internal/lru) in front of an optional on-disk tier of one JSON
// blob per key, written atomically (temp file + rename) so readers
// never observe a partial entry. Keys embed a schema version: bumping
// SchemaVersion — required whenever simulation semantics change in a
// result-visible way — makes every old entry unreachable without any
// deletion pass, and disk reads additionally validate that the entry's
// recorded inputs re-derive the key, so a corrupted or hand-edited
// blob degrades to a miss, never to a wrong result.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"gskew/internal/lru"
	"gskew/internal/obs"
	"gskew/internal/sim"
)

// SchemaVersion is mixed into every cache key. Bump it whenever a
// change anywhere in the simulation stack (kernels, runner accounting,
// predictor semantics, trace hashing) could alter the Result a cell
// produces; old entries then miss cleanly instead of serving stale
// results.
const SchemaVersion = 1

// Store telemetry, registered in the default obs registry.
var (
	mMemHits   = obs.NewCounter("store.mem_hits")
	mDiskHits  = obs.NewCounter("store.disk_hits")
	mMisses    = obs.NewCounter("store.misses")
	mPuts      = obs.NewCounter("store.puts")
	mEvictions = obs.NewCounter("store.evictions")
	mDiskDrops = obs.NewCounter("store.disk_drops") // unreadable/stale blobs treated as misses
)

// Options is the normalized, result-relevant subset of sim.Options
// that participates in cache keys. Fields that cannot change a Result
// (NoKernel — the kernel path is bit-identical by construction — and
// Recorder, which only observes) are deliberately absent, so a client
// toggling them still hits.
type Options struct {
	SkipFirstUse bool `json:"skip_first_use,omitempty"`
	HistoryBits  uint `json:"history_bits,omitempty"`
	FlushEvery   int  `json:"flush_every,omitempty"`
}

// NormalizeOptions projects sim.Options onto its key-relevant subset.
func NormalizeOptions(o sim.Options) Options {
	return Options{
		SkipFirstUse: o.SkipFirstUse,
		HistoryBits:  o.HistoryBits,
		FlushEvery:   o.FlushEvery,
	}
}

// Sim converts the normalized options back into runnable sim.Options.
func (o Options) Sim() sim.Options {
	return sim.Options{
		SkipFirstUse: o.SkipFirstUse,
		HistoryBits:  o.HistoryBits,
		FlushEvery:   o.FlushEvery,
	}
}

// canonical renders the options in the fixed key form.
func (o Options) canonical() string {
	return fmt.Sprintf("skip_first_use=%t,history_bits=%d,flush_every=%d",
		o.SkipFirstUse, o.HistoryBits, o.FlushEvery)
}

// Key is the SHA-256 content address of one simulation cell.
type Key [sha256.Size]byte

// String returns the lowercase hex form (the on-disk file stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// prefix returns the truncated form used as the in-memory recency key.
func (k Key) prefix() uint64 { return binary.LittleEndian.Uint64(k[:8]) }

// KeyFor derives the cache key of a cell. spec must be the canonical
// predictor spec string (predictor.Spec.String()) and traceHash the
// trace content hash; both are embedded verbatim, so two spellings of
// the same organisation share a key exactly when they normalize to the
// same canonical string.
func KeyFor(spec, traceHash string, opts Options) Key {
	h := sha256.New()
	fmt.Fprintf(h, "gskew-store/v%d|spec=%s|trace=%s|opts=%s",
		SchemaVersion, spec, traceHash, opts.canonical())
	var k Key
	h.Sum(k[:0])
	return k
}

// Entry is one cached cell: the inputs that derived its key plus the
// simulation result. Entries round-trip through JSON bit-identically
// (sim.Result has a MarshalJSON/UnmarshalJSON pair), so a response
// served from disk is byte-for-byte the response a fresh run produces.
type Entry struct {
	Schema      int        `json:"schema"`
	Spec        string     `json:"spec"`
	TraceHash   string     `json:"trace_sha256"`
	Opts        Options    `json:"options"`
	StorageBits int        `json:"storage_bits,omitempty"`
	Result      sim.Result `json:"result"`
}

// Key re-derives the entry's content address from its recorded inputs.
func (e Entry) Key() Key { return KeyFor(e.Spec, e.TraceHash, e.Opts) }

// memSlot is one in-memory tier cell. The full key is kept so that a
// truncated-prefix collision (probability ~2^-64 per pair) is detected
// and treated as a miss rather than returning the wrong entry.
type memSlot struct {
	key   Key
	entry Entry
}

// Store is the two-tiered cache. It is safe for concurrent use; the
// memory tier is guarded by one mutex (operations on it are map/list
// pokes, never simulation work) and disk I/O happens outside it.
type Store struct {
	mu  sync.Mutex
	rec *lru.Set           // recency over key prefixes
	mem map[uint64]memSlot // prefix -> resident entry
	dir string             // "" = memory-only
}

// Open returns a store with an in-memory tier of memEntries cells
// (must be positive) over the on-disk tier rooted at dir; dir == ""
// selects a memory-only store. The directory is created if missing.
func Open(memEntries int, dir string) (*Store, error) {
	if memEntries <= 0 {
		return nil, fmt.Errorf("store: memory tier capacity %d must be positive", memEntries)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", dir, err)
		}
	}
	return &Store{
		rec: lru.NewSet(memEntries),
		mem: make(map[uint64]memSlot, memEntries),
		dir: dir,
	}, nil
}

// Dir returns the disk-tier root ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// Len returns the number of entries resident in the memory tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec.Len()
}

// Get returns the entry stored under k. A memory-tier miss falls
// through to the disk tier; a disk hit is promoted into the memory
// tier. Unreadable, schema-stale or key-mismatched disk blobs are
// dropped (counted, not erred): the caller simply recomputes.
func (s *Store) Get(k Key) (Entry, bool) {
	s.mu.Lock()
	if slot, ok := s.mem[k.prefix()]; ok && slot.key == k {
		s.rec.Touch(k.prefix())
		s.mu.Unlock()
		mMemHits.Inc()
		return slot.entry, true
	}
	s.mu.Unlock()
	if s.dir == "" {
		mMisses.Inc()
		return Entry{}, false
	}
	e, ok := s.readDisk(k)
	if !ok {
		mMisses.Inc()
		return Entry{}, false
	}
	mDiskHits.Inc()
	s.insertMem(k, e)
	return e, true
}

// Put stores e under k, inserting into the memory tier and — when a
// disk tier is configured — persisting the blob atomically. The key
// must match the entry's content (programming error otherwise).
func (s *Store) Put(k Key, e Entry) error {
	if e.Schema == 0 {
		e.Schema = SchemaVersion
	}
	if e.Key() != k {
		return fmt.Errorf("store: key %s does not address entry (spec %q, trace %s)",
			k, e.Spec, e.TraceHash)
	}
	s.insertMem(k, e)
	mPuts.Inc()
	if s.dir == "" {
		return nil
	}
	return s.writeDisk(k, e)
}

// insertMem makes e resident, evicting the LRU entry when full.
func (s *Store) insertMem(k Key, e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := k.prefix()
	if slot, ok := s.mem[p]; ok && slot.key != k {
		// Truncated-prefix collision: drop the old occupant (it will
		// re-enter from disk or recomputation if ever needed again).
		mEvictions.Inc()
	}
	_, evicted, didEvict := s.rec.Touch(p)
	if didEvict {
		delete(s.mem, evicted)
		mEvictions.Inc()
	}
	s.mem[p] = memSlot{key: k, entry: e}
}

// path returns the disk blob path for a key.
func (s *Store) path(k Key) string { return filepath.Join(s.dir, k.String()+".json") }

// readDisk loads and validates one blob. ok is false for any blob that
// cannot be trusted: unreadable, unparsable, wrong schema, or whose
// recorded inputs do not re-derive k.
func (s *Store) readDisk(k Key) (Entry, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			mDiskDrops.Inc()
		}
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		mDiskDrops.Inc()
		return Entry{}, false
	}
	if e.Schema != SchemaVersion || e.Key() != k {
		mDiskDrops.Inc()
		return Entry{}, false
	}
	return e, true
}

// writeDisk persists one blob atomically: write to a unique temp file
// in the store directory, then rename over the final path, so a
// concurrent reader sees either the old complete blob or the new one.
func (s *Store) writeDisk(k Key, e Entry) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding %s: %w", k, err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: staging %s: %w", k, err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: staging %s: %w", k, werr)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: committing %s: %w", k, err)
	}
	return nil
}
