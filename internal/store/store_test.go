package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gskew/internal/sim"
)

func testEntry(spec, traceHash string, opts Options) Entry {
	return Entry{
		Schema:      SchemaVersion,
		Spec:        spec,
		TraceHash:   traceHash,
		Opts:        opts,
		StorageBits: 32768,
		Result:      sim.Result{Conditionals: 1000, Mispredicts: 42, Unconditionals: 7},
	}
}

func TestKeyDependsOnEveryComponent(t *testing.T) {
	base := KeyFor("gshare:n=10,k=4,ctr=2", "aaaa", Options{})
	for name, k := range map[string]Key{
		"spec":  KeyFor("gshare:n=10,k=6,ctr=2", "aaaa", Options{}),
		"trace": KeyFor("gshare:n=10,k=4,ctr=2", "bbbb", Options{}),
		"skip":  KeyFor("gshare:n=10,k=4,ctr=2", "aaaa", Options{SkipFirstUse: true}),
		"hist":  KeyFor("gshare:n=10,k=4,ctr=2", "aaaa", Options{HistoryBits: 3}),
		"flush": KeyFor("gshare:n=10,k=4,ctr=2", "aaaa", Options{FlushEvery: 100}),
	} {
		if k == base {
			t.Errorf("key ignores %s component", name)
		}
	}
	if base != KeyFor("gshare:n=10,k=4,ctr=2", "aaaa", Options{}) {
		t.Error("key not deterministic")
	}
}

func TestNormalizeOptionsDropsResultInvariantFields(t *testing.T) {
	a := NormalizeOptions(sim.Options{SkipFirstUse: true, FlushEvery: 5})
	b := NormalizeOptions(sim.Options{SkipFirstUse: true, FlushEvery: 5, NoKernel: true})
	if a != b {
		t.Errorf("NoKernel leaked into normalized options: %+v vs %+v", a, b)
	}
	if got := a.Sim(); got.SkipFirstUse != true || got.FlushEvery != 5 || got.NoKernel {
		t.Errorf("Sim() round-trip wrong: %+v", got)
	}
}

func TestMemoryTierHitAndEviction(t *testing.T) {
	s, err := Open(2, "")
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 3)
	keys := make([]Key, 3)
	for i, spec := range []string{"bimodal:n=10,ctr=2", "bimodal:n=11,ctr=2", "bimodal:n=12,ctr=2"} {
		entries[i] = testEntry(spec, "cafe", Options{})
		keys[i] = entries[i].Key()
		if err := s.Put(keys[i], entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("memory tier holds %d entries, want 2 (capacity)", s.Len())
	}
	// Key 0 is the LRU entry and was evicted; 1 and 2 remain.
	if _, ok := s.Get(keys[0]); ok {
		t.Error("evicted entry still resident in memory-only store")
	}
	for i := 1; i < 3; i++ {
		got, ok := s.Get(keys[i])
		if !ok {
			t.Fatalf("entry %d missing", i)
		}
		if got != entries[i] {
			t.Errorf("entry %d mutated: got %+v want %+v", i, got, entries[i])
		}
	}
}

func TestDiskTierRoundTripAndPromotion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("gskewed:n=10,k=6,banks=3,ctr=2,policy=partial", "beef", Options{FlushEvery: 1000})
	k := e.Key()
	if err := s.Put(k, e); err != nil {
		t.Fatal(err)
	}
	// A second store over the same directory (cold memory tier) must
	// serve the identical entry from disk.
	s2, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(k)
	if !ok {
		t.Fatal("disk tier miss for persisted entry")
	}
	if got != e {
		t.Errorf("disk round-trip mutated entry:\n got %+v\nwant %+v", got, e)
	}
	// And it is now memory-resident.
	if s2.Len() != 1 {
		t.Errorf("disk hit not promoted: memory tier len = %d", s2.Len())
	}
	// No stray temp files after the atomic rename.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(matches) != 0 {
		t.Errorf("leftover temp files: %v", matches)
	}
}

func TestPutRejectsMismatchedKey(t *testing.T) {
	s, err := Open(2, "")
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("bimodal:n=10,ctr=2", "dead", Options{})
	wrong := KeyFor("bimodal:n=11,ctr=2", "dead", Options{})
	if err := s.Put(wrong, e); err == nil {
		t.Error("mismatched key accepted")
	}
}

func TestCorruptAndStaleDiskBlobsDegradeToMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(2, dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("bimodal:n=10,ctr=2", "f00d", Options{})
	k := e.Key()
	path := filepath.Join(dir, k.String()+".json")

	// Corrupt JSON.
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Error("corrupt blob served")
	}

	// Valid JSON, stale schema.
	stale := e
	stale.Schema = SchemaVersion + 1
	data, _ := json.Marshal(stale)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Error("schema-stale blob served")
	}

	// Valid JSON whose inputs derive a different key (hand-edited).
	forged := e
	forged.Spec = "bimodal:n=11,ctr=2"
	data, _ = json.Marshal(forged)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Error("key-mismatched blob served")
	}
}

func TestOpenValidatesArguments(t *testing.T) {
	if _, err := Open(0, ""); err == nil {
		t.Error("zero memory capacity accepted")
	}
	// dir pointing at an existing file must fail.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(1, filepath.Join(f, "sub")); err == nil {
		t.Error("un-creatable directory accepted")
	}
}

func TestKeyStringIsHex(t *testing.T) {
	k := KeyFor("bimodal:n=10,ctr=2", "aa", Options{})
	hex := k.String()
	if len(hex) != 64 || strings.ToLower(hex) != hex {
		t.Errorf("key string %q not 64-char lowercase hex", hex)
	}
}
