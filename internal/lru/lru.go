// Package lru implements fixed-capacity least-recently-used key sets
// and key/value caches, the substrate for the paper's fully-associative
// tagged predictor tables and for the three-Cs aliasing measurements.
//
// The implementation is an intrusive doubly-linked list over a slice of
// pre-allocated nodes plus a map for lookup, so steady-state operation
// performs no allocation. Keys are uint64 — in this repository they are
// information vectors V = (address, history).
package lru

import "fmt"

const nilIdx = -1

type node struct {
	key        uint64
	prev, next int32
}

// Set is a fixed-capacity LRU set of uint64 keys. Touch inserts or
// refreshes a key, evicting the least-recently-used key when full.
type Set struct {
	nodes      []node
	index      map[uint64]int32
	head, tail int32 // head = most recent, tail = least recent
	free       int32 // head of free list (chained via next)
	size       int
}

// NewSet returns an LRU set with the given capacity (> 0).
func NewSet(capacity int) *Set {
	if capacity <= 0 {
		panic(fmt.Sprintf("lru: capacity %d must be positive", capacity))
	}
	s := &Set{
		nodes: make([]node, capacity),
		index: make(map[uint64]int32, capacity),
		head:  nilIdx,
		tail:  nilIdx,
	}
	// Chain the free list.
	for i := range s.nodes {
		s.nodes[i].next = int32(i + 1)
	}
	s.nodes[capacity-1].next = nilIdx
	s.free = 0
	return s
}

// Capacity returns the maximum number of keys the set can hold.
func (s *Set) Capacity() int { return len(s.nodes) }

// Len returns the current number of keys.
func (s *Set) Len() int { return s.size }

// Contains reports whether key is present without refreshing it.
func (s *Set) Contains(key uint64) bool {
	_, ok := s.index[key]
	return ok
}

// Touch inserts key (as most recently used) or refreshes it if present.
// It reports whether the key was already present (hit), and the evicted
// key, if insertion displaced one.
func (s *Set) Touch(key uint64) (hit bool, evicted uint64, didEvict bool) {
	if i, ok := s.index[key]; ok {
		s.moveToFront(i)
		return true, 0, false
	}
	var i int32
	if s.free != nilIdx {
		i = s.free
		s.free = s.nodes[i].next
		s.size++
	} else {
		// Evict the tail.
		i = s.tail
		evicted = s.nodes[i].key
		didEvict = true
		delete(s.index, evicted)
		s.unlink(i)
	}
	s.nodes[i].key = key
	s.index[key] = i
	s.pushFront(i)
	return false, evicted, didEvict
}

// Remove deletes key from the set, reporting whether it was present.
func (s *Set) Remove(key uint64) bool {
	i, ok := s.index[key]
	if !ok {
		return false
	}
	delete(s.index, key)
	s.unlink(i)
	s.nodes[i].next = s.free
	s.free = i
	s.size--
	return true
}

// Reset empties the set.
func (s *Set) Reset() {
	clear(s.index)
	for i := range s.nodes {
		s.nodes[i].next = int32(i + 1)
	}
	s.nodes[len(s.nodes)-1].next = nilIdx
	s.free = 0
	s.head, s.tail = nilIdx, nilIdx
	s.size = 0
}

// Keys returns the keys from most to least recently used. Intended for
// tests and diagnostics; it allocates.
func (s *Set) Keys() []uint64 {
	out := make([]uint64, 0, s.size)
	for i := s.head; i != nilIdx; i = s.nodes[i].next {
		out = append(out, s.nodes[i].key)
	}
	return out
}

func (s *Set) pushFront(i int32) {
	s.nodes[i].prev = nilIdx
	s.nodes[i].next = s.head
	if s.head != nilIdx {
		s.nodes[s.head].prev = i
	}
	s.head = i
	if s.tail == nilIdx {
		s.tail = i
	}
}

func (s *Set) unlink(i int32) {
	p, n := s.nodes[i].prev, s.nodes[i].next
	if p != nilIdx {
		s.nodes[p].next = n
	} else {
		s.head = n
	}
	if n != nilIdx {
		s.nodes[n].prev = p
	} else {
		s.tail = p
	}
}

func (s *Set) moveToFront(i int32) {
	if s.head == i {
		return
	}
	s.unlink(i)
	s.pushFront(i)
}

// Cache is a fixed-capacity LRU map from uint64 keys to uint8 values
// (saturating-counter states in this repository). It backs the
// fully-associative tagged predictor of Figure 8.
type Cache struct {
	set    *Set
	values map[uint64]uint8
}

// NewCache returns an LRU cache with the given capacity (> 0).
func NewCache(capacity int) *Cache {
	return &Cache{
		set:    NewSet(capacity),
		values: make(map[uint64]uint8, capacity),
	}
}

// Capacity returns the maximum number of entries.
func (c *Cache) Capacity() int { return c.set.Capacity() }

// Len returns the current number of entries.
func (c *Cache) Len() int { return c.set.Len() }

// Get returns the value for key and refreshes its recency. ok is false
// on a miss, in which case the cache is unchanged.
func (c *Cache) Get(key uint64) (v uint8, ok bool) {
	if !c.set.Contains(key) {
		return 0, false
	}
	c.set.Touch(key)
	return c.values[key], true
}

// Peek returns the value for key without refreshing recency.
func (c *Cache) Peek(key uint64) (v uint8, ok bool) {
	v, ok = c.values[key]
	return
}

// Fetch touches key as most recently used, inserting it if absent (and
// evicting the LRU entry if needed). It returns the value currently
// stored and whether the key was already present; on a fresh insert the
// value is unspecified until the caller follows up with Store, which it
// must. Fetch+Store fuse the Get+Put pair of a read-modify-write into
// one recency operation.
func (c *Cache) Fetch(key uint64) (v uint8, hit bool) {
	hit, evicted, didEvict := c.set.Touch(key)
	if didEvict {
		delete(c.values, evicted)
	}
	if hit {
		v = c.values[key]
	}
	return v, hit
}

// Store overwrites the value for a key made resident by a preceding
// Fetch, without touching recency.
func (c *Cache) Store(key uint64, v uint8) { c.values[key] = v }

// Put inserts or updates key with value v (as most recently used),
// evicting the LRU entry if needed. It returns the evicted key, if any.
func (c *Cache) Put(key uint64, v uint8) (evicted uint64, didEvict bool) {
	_, evicted, didEvict = c.set.Touch(key)
	if didEvict {
		delete(c.values, evicted)
	}
	c.values[key] = v
	return evicted, didEvict
}

// Reset empties the cache.
func (c *Cache) Reset() {
	c.set.Reset()
	clear(c.values)
}
