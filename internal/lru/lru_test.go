package lru

import (
	"testing"
	"testing/quick"

	"gskew/internal/rng"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(3)
	if s.Capacity() != 3 || s.Len() != 0 {
		t.Fatalf("fresh set: cap=%d len=%d", s.Capacity(), s.Len())
	}
	hit, _, ev := s.Touch(10)
	if hit || ev {
		t.Fatal("first touch must miss without eviction")
	}
	hit, _, _ = s.Touch(10)
	if !hit {
		t.Fatal("second touch of same key must hit")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestSetEvictionOrder(t *testing.T) {
	s := NewSet(3)
	s.Touch(1)
	s.Touch(2)
	s.Touch(3)
	// Refresh 1 so the LRU key is 2.
	s.Touch(1)
	_, evicted, did := s.Touch(4)
	if !did || evicted != 2 {
		t.Errorf("evicted %d (did=%v), want 2", evicted, did)
	}
	// MRU order should now be 4, 1, 3.
	want := []uint64{4, 1, 3}
	got := s.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestSetCapacityOne(t *testing.T) {
	s := NewSet(1)
	s.Touch(1)
	hit, ev, did := s.Touch(2)
	if hit || !did || ev != 1 {
		t.Errorf("capacity-1 set: hit=%v ev=%d did=%v", hit, ev, did)
	}
	if !s.Contains(2) || s.Contains(1) {
		t.Error("capacity-1 set retained wrong key")
	}
}

func TestSetRemove(t *testing.T) {
	s := NewSet(3)
	s.Touch(1)
	s.Touch(2)
	if !s.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if s.Remove(1) {
		t.Fatal("second Remove(1) = true")
	}
	if s.Len() != 1 || s.Contains(1) {
		t.Fatal("Remove did not delete")
	}
	// Freed slot is reusable without eviction.
	s.Touch(3)
	s.Touch(4)
	if s.Len() != 3 {
		t.Fatalf("Len = %d after refill, want 3", s.Len())
	}
}

func TestSetReset(t *testing.T) {
	s := NewSet(4)
	for k := uint64(0); k < 4; k++ {
		s.Touch(k)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not empty")
	}
	for k := uint64(0); k < 4; k++ {
		if s.Contains(k) {
			t.Fatal("Reset left keys behind")
		}
	}
	// Full capacity available again.
	for k := uint64(10); k < 14; k++ {
		if _, _, did := s.Touch(k); did {
			t.Fatal("eviction during refill after Reset")
		}
	}
}

func TestSetPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSet(%d) did not panic", c)
				}
			}()
			NewSet(c)
		}()
	}
}

// refLRU is a deliberately simple slice-based model used as an oracle.
type refLRU struct {
	keys []uint64
	cap  int
}

func (r *refLRU) touch(k uint64) (hit bool, evicted uint64, did bool) {
	for i, v := range r.keys {
		if v == k {
			r.keys = append(r.keys[:i], r.keys[i+1:]...)
			r.keys = append([]uint64{k}, r.keys...)
			return true, 0, false
		}
	}
	r.keys = append([]uint64{k}, r.keys...)
	if len(r.keys) > r.cap {
		evicted = r.keys[len(r.keys)-1]
		r.keys = r.keys[:len(r.keys)-1]
		return false, evicted, true
	}
	return false, 0, false
}

func TestSetMatchesReferenceModel(t *testing.T) {
	// Property: the intrusive implementation agrees with a naive model
	// on hit/miss, evictions and full recency order for random streams.
	f := func(seed uint64, capRaw uint8, n uint16) bool {
		capacity := int(capRaw%32) + 1
		s := NewSet(capacity)
		ref := &refLRU{cap: capacity}
		r := rng.NewXoshiro256(seed)
		steps := int(n%2048) + 1
		for i := 0; i < steps; i++ {
			k := r.Uint64n(uint64(capacity * 3)) // force plenty of evictions
			h1, e1, d1 := s.Touch(k)
			h2, e2, d2 := ref.touch(k)
			if h1 != h2 || d1 != d2 || (d1 && e1 != e2) {
				return false
			}
		}
		got := s.Keys()
		if len(got) != len(ref.keys) {
			return false
		}
		for i := range got {
			if got[i] != ref.keys[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get(1); ok {
		t.Fatal("Get on empty cache hit")
	}
	c.Put(1, 10)
	c.Put(2, 20)
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	// 2 is now LRU; inserting 3 evicts it.
	ev, did := c.Put(3, 30)
	if !did || ev != 2 {
		t.Fatalf("evicted %d (did=%v), want 2", ev, did)
	}
	if _, ok := c.Peek(2); ok {
		t.Fatal("evicted key still readable")
	}
	if v, ok := c.Peek(3); !ok || v != 30 {
		t.Fatalf("Peek(3) = %d,%v", v, ok)
	}
}

func TestCachePutUpdatesValue(t *testing.T) {
	c := NewCache(2)
	c.Put(1, 10)
	c.Put(1, 11)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if v, _ := c.Peek(1); v != 11 {
		t.Fatalf("value = %d, want 11", v)
	}
}

func TestCachePeekDoesNotRefresh(t *testing.T) {
	c := NewCache(2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Peek(1)   // must NOT refresh
	c.Put(3, 3) // evicts 1 (still LRU)
	if _, ok := c.Peek(1); ok {
		t.Error("Peek refreshed recency")
	}
	if _, ok := c.Peek(2); !ok {
		t.Error("wrong entry evicted")
	}
}

func TestCacheGetRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Get(1)    // refreshes 1
	c.Put(3, 3) // evicts 2
	if _, ok := c.Peek(1); !ok {
		t.Error("refreshed entry was evicted")
	}
	if _, ok := c.Peek(2); ok {
		t.Error("stale entry survived")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(2)
	c.Put(1, 1)
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset did not empty")
	}
	if _, ok := c.Peek(1); ok {
		t.Fatal("Reset left values behind")
	}
}

func BenchmarkSetTouch(b *testing.B) {
	s := NewSet(1 << 12)
	r := rng.NewXoshiro256(1)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = r.Uint64n(1 << 13)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Touch(keys[i&(1<<16-1)])
	}
}

func BenchmarkCachePutGet(b *testing.B) {
	c := NewCache(1 << 12)
	r := rng.NewXoshiro256(1)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = r.Uint64n(1 << 13)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		if _, ok := c.Get(k); !ok {
			c.Put(k, uint8(i))
		}
	}
}
