package history

import (
	"testing"
	"testing/quick"
)

func TestGlobalShift(t *testing.T) {
	g := NewGlobal(4)
	if g.Bits() != 0 {
		t.Fatal("new register not zero")
	}
	seq := []bool{true, false, true, true}
	for _, taken := range seq {
		g.Shift(taken)
	}
	// Oldest-to-newest 1011 -> bits value 0b1011 (h_1 = newest = bit 0).
	if g.Bits() != 0b1011 {
		t.Errorf("Bits() = %04b, want 1011", g.Bits())
	}
	if g.String() != "1011" {
		t.Errorf("String() = %q, want 1011", g.String())
	}
}

func TestGlobalWindow(t *testing.T) {
	// Only the most recent k outcomes are retained.
	g := NewGlobal(3)
	for _, taken := range []bool{true, true, true, false, false, false} {
		g.Shift(taken)
	}
	if g.Bits() != 0 {
		t.Errorf("register retained stale bits: %03b", g.Bits())
	}
	g.Shift(true)
	if g.Bits() != 1 {
		t.Errorf("newest bit not at position 0: %03b", g.Bits())
	}
}

func TestGlobalZeroLength(t *testing.T) {
	g := NewGlobal(0)
	for i := 0; i < 10; i++ {
		g.Shift(i%2 == 0)
		if g.Bits() != 0 {
			t.Fatal("zero-length register must always read 0")
		}
	}
	if g.String() != "" {
		t.Errorf("zero-length String() = %q", g.String())
	}
}

func TestGlobalMaskInvariant(t *testing.T) {
	f := func(k8 uint8, seq []bool) bool {
		k := uint(k8 % 20)
		g := NewGlobal(k)
		for _, taken := range seq {
			g.Shift(taken)
			if k < 64 && g.Bits() >= uint64(1)<<k && k > 0 {
				return false
			}
			if k == 0 && g.Bits() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalSetReset(t *testing.T) {
	g := NewGlobal(4)
	g.Set(0xff)
	if g.Bits() != 0xf {
		t.Errorf("Set did not mask: %#x", g.Bits())
	}
	g.Reset()
	if g.Bits() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestGlobalPanicsOnWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGlobal(64) did not panic")
		}
	}()
	NewGlobal(64)
}

func TestStringMatchesBits(t *testing.T) {
	f := func(v uint16, seq []bool) bool {
		g := NewGlobal(8)
		for _, taken := range seq {
			g.Shift(taken)
		}
		s := g.String()
		if len(s) != 8 {
			return false
		}
		var rebuilt uint64
		for _, c := range s {
			rebuilt <<= 1
			if c == '1' {
				rebuilt |= 1
			}
		}
		return rebuilt == g.Bits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerAddressIsolation(t *testing.T) {
	p := NewPerAddress(4, 6)
	p.Shift(0, true)
	p.Shift(0, true)
	p.Shift(5, false)
	if p.Bits(0) != 0b11 {
		t.Errorf("reg 0 = %b, want 11", p.Bits(0))
	}
	if p.Bits(5) != 0 {
		t.Errorf("reg 5 = %b, want 0", p.Bits(5))
	}
	// Other registers untouched.
	for a := uint64(1); a < 16; a++ {
		if a != 5 && p.Bits(a) != 0 {
			t.Errorf("reg %d perturbed", a)
		}
	}
}

func TestPerAddressAliasing(t *testing.T) {
	// Addresses sharing low n bits share a register — by design.
	p := NewPerAddress(4, 4)
	p.Shift(0x3, true)
	if p.Bits(0x13) != 1 {
		t.Error("addresses congruent mod 16 must share a register")
	}
}

func TestPerAddressReset(t *testing.T) {
	p := NewPerAddress(3, 4)
	for a := uint64(0); a < 8; a++ {
		p.Shift(a, true)
	}
	p.Reset()
	for a := uint64(0); a < 8; a++ {
		if p.Bits(a) != 0 {
			t.Fatalf("reg %d not cleared", a)
		}
	}
}

func TestPerAddressPanics(t *testing.T) {
	bad := []func(){
		func() { NewPerAddress(0, 4) },
		func() { NewPerAddress(27, 4) },
		func() { NewPerAddress(4, 64) },
	}
	for i, fn := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPerAddressDims(t *testing.T) {
	p := NewPerAddress(5, 7)
	if p.Tables() != 32 {
		t.Errorf("Tables() = %d", p.Tables())
	}
	if p.Len() != 7 {
		t.Errorf("Len() = %d", p.Len())
	}
}

func BenchmarkGlobalShift(b *testing.B) {
	g := NewGlobal(12)
	for i := 0; i < b.N; i++ {
		g.Shift(i&3 != 0)
	}
}
