// Package history implements branch-history registers.
//
// The paper's global-history schemes divide the dynamic branch stream
// into substreams keyed by (address, history) pairs, where the history
// is a shift register of recent branch directions. Following section
// 3.1, unconditional branches are included in the global history (they
// shift in a "taken" bit) but are never themselves predicted.
//
// The package also provides a per-address history table (PAs-style),
// used by the per-address extension experiments suggested in the
// paper's future-work section.
package history

import "fmt"

// MaxBits is the widest supported history register.
const MaxBits = 63

// Global is a global branch-history shift register of fixed length.
// The most recent branch outcome occupies bit 0 (h_1 in the paper's
// notation); older outcomes occupy higher bits.
//
// A zero-length register is valid and always reads as 0, which lets
// history-less schemes (bimodal) share the same plumbing.
type Global struct {
	bits uint64
	k    uint
	mask uint64
}

// NewGlobal returns a history register of k bits, initially all zero
// (i.e. "not taken"). It panics if k > MaxBits.
func NewGlobal(k uint) *Global {
	if k > MaxBits {
		panic(fmt.Sprintf("history: length %d out of range [0,%d]", k, MaxBits))
	}
	return &Global{k: k, mask: uint64(1)<<k - 1}
}

// Len returns the register length in bits.
func (g *Global) Len() uint { return g.k }

// Bits returns the current history value, in [0, 2^k).
func (g *Global) Bits() uint64 { return g.bits }

// Shift records a branch outcome, pushing it in as the newest bit.
func (g *Global) Shift(taken bool) {
	g.bits <<= 1
	if taken {
		g.bits |= 1
	}
	g.bits &= g.mask
}

// Set overwrites the register contents (masked to k bits). Used to
// checkpoint/restore around context switches in experiments that model
// history pollution explicitly.
func (g *Global) Set(v uint64) { g.bits = v & g.mask }

// Reset clears the register.
func (g *Global) Reset() { g.bits = 0 }

// String renders the register as a bit string, oldest bit first, e.g.
// "0101" for k=4. A zero-length register renders as "".
func (g *Global) String() string {
	if g.k == 0 {
		return ""
	}
	buf := make([]byte, g.k)
	for i := uint(0); i < g.k; i++ {
		// buf[0] is the oldest bit (h_k), buf[k-1] the newest (h_1).
		if g.bits>>(g.k-1-i)&1 == 1 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// PerAddress is a table of per-branch history registers indexed by the
// low bits of the branch address (a first-level BHT as in Yeh/Patt
// two-level schemes). It is provided for the paper's future-work
// extension of skewing to per-address schemes.
type PerAddress struct {
	regs []uint64
	k    uint
	mask uint64
	imsk uint64
}

// NewPerAddress returns a table of 2^n history registers of k bits.
func NewPerAddress(n, k uint) *PerAddress {
	if n < 1 || n > 26 {
		panic(fmt.Sprintf("history: per-address table width %d out of range [1,26]", n))
	}
	if k > MaxBits {
		panic(fmt.Sprintf("history: length %d out of range [0,%d]", k, MaxBits))
	}
	return &PerAddress{
		regs: make([]uint64, 1<<n),
		k:    k,
		mask: uint64(1)<<k - 1,
		imsk: uint64(1)<<n - 1,
	}
}

// Len returns the per-register length in bits.
func (p *PerAddress) Len() uint { return p.k }

// Tables returns the number of registers.
func (p *PerAddress) Tables() int { return len(p.regs) }

// Bits returns the history register selected by addr.
func (p *PerAddress) Bits(addr uint64) uint64 { return p.regs[addr&p.imsk] }

// Shift records an outcome into the register selected by addr.
func (p *PerAddress) Shift(addr uint64, taken bool) {
	i := addr & p.imsk
	v := p.regs[i] << 1
	if taken {
		v |= 1
	}
	p.regs[i] = v & p.mask
}

// Reset clears every register.
func (p *PerAddress) Reset() {
	for i := range p.regs {
		p.regs[i] = 0
	}
}
