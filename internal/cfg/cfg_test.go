package cfg

import (
	"testing"
	"testing/quick"

	"gskew/internal/rng"
	"gskew/internal/trace"
)

// tinyProgram builds a hand-written program:
//
//	proc0: if (biased .9) { block } ; loop(3 trips) { if (taken-always) } ; call proc1
//	proc1: if (never-taken)
func tinyProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder(0x100)
	// proc1 first? No: AddProc order defines indices; calls must target
	// higher indices, so build proc0 body referencing index 1 before
	// adding both procs in order.
	ifSite := b.NewSite(Biased{P: 0.9})
	blk := b.NewBlock(4)
	loopSite := b.NewSite(Biased{P: 1})
	innerSite := b.NewSite(Biased{P: 1})
	call := b.NewCall(1)
	body0 := []Node{
		&If{Site: ifSite, Then: []Node{blk}},
		&Loop{Site: loopSite, Body: []Node{&If{Site: innerSite}}, Trips: TripDist{Min: 3}},
		call,
	}
	neverSite := b.NewSite(Biased{P: 0})
	body1 := []Node{&If{Site: neverSite}}
	b.AddProc("main", body0)
	b.AddProc("leaf", body1)
	prog, err := b.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBuilderAssignsDistinctPCs(t *testing.T) {
	prog := tinyProgram(t)
	seen := make(map[uint64]bool)
	for _, s := range prog.Sites() {
		if seen[s.PC] {
			t.Fatalf("duplicate site PC %#x", s.PC)
		}
		seen[s.PC] = true
	}
	if prog.NumSites() != 4 {
		t.Fatalf("NumSites = %d, want 4", prog.NumSites())
	}
}

func TestWalkerLoopSemantics(t *testing.T) {
	// With Min=3 trips, the backedge must be taken exactly 2 times then
	// not-taken once, and the body site executes 3 times per loop entry.
	b := NewBuilder(0)
	inner := b.NewSite(Biased{P: 1})
	back := b.NewSite(Biased{P: 1})
	body := []Node{&Loop{Site: back, Body: []Node{&If{Site: inner}}, Trips: TripDist{Min: 3}}}
	b.AddProc("main", body)
	prog, err := b.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(prog, 1)
	var got []trace.Branch
	for i := 0; i < 6; i++ { // one full loop activation: 3 inner + 3 backedge events
		br, _ := w.Next()
		got = append(got, br)
	}
	want := []struct {
		pc    uint64
		taken bool
	}{
		{inner.PC, true}, // iter 1 body
		{back.PC, true},  // backedge taken
		{inner.PC, true}, // iter 2
		{back.PC, true},  // backedge taken
		{inner.PC, true}, // iter 3
		{back.PC, false}, // exit
	}
	for i, wv := range want {
		if got[i].PC != wv.pc || got[i].Taken != wv.taken {
			t.Fatalf("event %d = {pc:%#x taken:%v}, want {pc:%#x taken:%v}",
				i, got[i].PC, got[i].Taken, wv.pc, wv.taken)
		}
	}
}

func TestWalkerCallEmitsCallAndReturn(t *testing.T) {
	prog := tinyProgram(t)
	w := NewWalker(prog, 42)
	// Drain a bunch of events and check that every call PC is followed
	// (eventually) by the callee's site then the return jump.
	events := w.Emit(nil, 50)
	var call *Call
	for _, n := range prog.Procs[0].Body {
		if c, ok := n.(*Call); ok {
			call = c
		}
	}
	if call == nil {
		t.Fatal("no call in proc0")
	}
	leafSite := prog.Procs[1].Body[0].(*If).Site
	retPC := prog.Procs[1].ReturnPC
	found := false
	for i, e := range events {
		if e.PC == call.PC {
			if e.Kind != trace.Unconditional || !e.Taken {
				t.Fatal("call event must be unconditional taken")
			}
			if i+2 >= len(events) {
				break
			}
			if events[i+1].PC != leafSite.PC || events[i+1].Kind != trace.Conditional {
				t.Fatalf("after call: got %+v, want leaf site", events[i+1])
			}
			if events[i+2].PC != retPC || events[i+2].Kind != trace.Unconditional {
				t.Fatalf("after leaf: got %+v, want return jump %#x", events[i+2], retPC)
			}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("call event never emitted")
	}
}

func TestWalkerEndless(t *testing.T) {
	// The walker restarts the entry procedure forever.
	prog := tinyProgram(t)
	w := NewWalker(prog, 7)
	for i := 0; i < 10000; i++ {
		if _, err := w.Next(); err != nil {
			t.Fatalf("Next() error at %d: %v", i, err)
		}
	}
}

func TestWalkerDeterminism(t *testing.T) {
	prog := tinyProgram(t)
	a := NewWalker(prog, 99).Emit(nil, 2000)
	b := NewWalker(prog, 99).Emit(nil, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed walkers diverged at event %d", i)
		}
	}
	c := NewWalker(prog, 100).Emit(nil, 2000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestEmitConditionals(t *testing.T) {
	prog := tinyProgram(t)
	w := NewWalker(prog, 5)
	events := w.EmitConditionals(nil, 500)
	cond := 0
	for _, e := range events {
		if e.Kind == trace.Conditional {
			cond++
		}
	}
	if cond != 500 {
		t.Fatalf("EmitConditionals produced %d conditionals, want 500", cond)
	}
	if events[len(events)-1].Kind != trace.Conditional {
		t.Error("stream should end on the 500th conditional")
	}
}

func TestBiasedBehaviorFrequency(t *testing.T) {
	r := rng.NewXoshiro256(3)
	var scratch uint64
	hits := 0
	const n = 100000
	b := Biased{P: 0.9}
	for i := 0; i < n; i++ {
		if b.Decide(r, 0, &scratch) {
			hits++
		}
	}
	if f := float64(hits) / n; f < 0.89 || f > 0.91 {
		t.Errorf("Biased{0.9} frequency = %.4f", f)
	}
}

func TestCorrelatedBehaviorIsLearnable(t *testing.T) {
	// With zero noise the outcome is a pure function of masked history.
	c := Correlated{Mask: 0b101, Invert: false}
	r := rng.NewXoshiro256(1)
	var scratch uint64
	cases := []struct {
		hist uint64
		want bool
	}{
		{0b000, false},
		{0b001, true},
		{0b100, true},
		{0b101, false},
		{0b111, false},
		{0b011, true},
	}
	for _, tc := range cases {
		if got := c.Decide(r, tc.hist, &scratch); got != tc.want {
			t.Errorf("Correlated(hist=%03b) = %v, want %v", tc.hist, got, tc.want)
		}
	}
	inv := Correlated{Mask: 0b101, Invert: true}
	for _, tc := range cases {
		if got := inv.Decide(r, tc.hist, &scratch); got == tc.want {
			t.Errorf("inverted Correlated(hist=%03b) = %v", tc.hist, got)
		}
	}
}

func TestAlternatingBehavior(t *testing.T) {
	a := Alternating{Period: 3}
	var scratch uint64
	r := rng.NewXoshiro256(1)
	var got []bool
	for i := 0; i < 12; i++ {
		got = append(got, a.Decide(r, 0, &scratch))
	}
	want := []bool{true, true, true, false, false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Alternating sequence = %v", got)
		}
	}
}

func TestAlternatingZeroPeriod(t *testing.T) {
	a := Alternating{}
	var scratch uint64
	r := rng.NewXoshiro256(1)
	if !a.Decide(r, 0, &scratch) || a.Decide(r, 0, &scratch) {
		t.Error("zero-period Alternating should behave as period 1")
	}
}

func TestTripDistSample(t *testing.T) {
	r := rng.NewXoshiro256(11)
	// Constant distribution.
	d := TripDist{Min: 5}
	for i := 0; i < 100; i++ {
		if got := d.Sample(r); got != 5 {
			t.Fatalf("constant TripDist sampled %d", got)
		}
	}
	// Geometric tail mean.
	d = TripDist{Min: 2, MeanExtra: 6}
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 2 {
			t.Fatalf("sample %d below Min", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	if mean < 7.5 || mean > 8.5 {
		t.Errorf("TripDist mean = %.2f, want ~8", mean)
	}
	// Zero/negative Min clamps to 1.
	d = TripDist{Min: 0}
	if d.Sample(r) != 1 {
		t.Error("Min=0 should clamp to 1")
	}
}

func TestValidateRejectsRecursion(t *testing.T) {
	b := NewBuilder(0)
	call := b.NewCall(0) // self-call: violates DAG ordering
	b.AddProc("main", []Node{call})
	if _, err := b.Build(0); err == nil {
		t.Fatal("Build accepted a recursive program")
	}
}

func TestValidateRejectsBadEntry(t *testing.T) {
	b := NewBuilder(0)
	b.AddProc("main", []Node{b.NewBlock(1)})
	if _, err := b.Build(5); err == nil {
		t.Fatal("Build accepted out-of-range entry")
	}
}

func TestGenerateExactSiteCount(t *testing.T) {
	f := func(seed uint64, sites16 uint16, procs8 uint8) bool {
		sites := int(sites16%500) + 1
		procs := int(procs8%10) + 1
		prog, err := Generate(GenConfig{Procs: procs, StaticBranches: sites}, seed)
		if err != nil {
			return false
		}
		return prog.NumSites() == sites
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGenerateValidPrograms(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		prog, err := Generate(GenConfig{Procs: 8, StaticBranches: 200}, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Walk it; must not panic and must emit plenty of conditionals.
		w := NewWalker(prog, seed)
		st := trace.NewStats()
		for i := 0; i < 20000; i++ {
			br, _ := w.Next()
			st.Observe(br)
		}
		if st.Dynamic == 0 {
			t.Fatalf("seed %d: no conditional branches emitted", seed)
		}
	}
}

func TestGenerateCoverage(t *testing.T) {
	// Most static sites should actually execute in a long-enough walk;
	// this keeps the Table 1 static counts meaningful.
	prog, err := Generate(GenConfig{Procs: 6, StaticBranches: 300}, 12345)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(prog, 1)
	seen := make(map[uint64]bool)
	for i := 0; i < 300000; i++ {
		br, _ := w.Next()
		if br.Kind == trace.Conditional {
			seen[br.PC] = true
		}
	}
	coverage := float64(len(seen)) / float64(prog.NumSites())
	if coverage < 0.8 {
		t.Errorf("site coverage = %.2f (%d/%d), want >= 0.8",
			coverage, len(seen), prog.NumSites())
	}
}

func TestGenerateAddressesWithinLayout(t *testing.T) {
	base := uint64(0x40000)
	prog, err := Generate(GenConfig{Procs: 4, StaticBranches: 100, Base: base}, 9)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker(prog, 2)
	for i := 0; i < 50000; i++ {
		br, _ := w.Next()
		if br.PC < base {
			t.Fatalf("event PC %#x below program base %#x", br.PC, base)
		}
	}
}

func TestStaticBias(t *testing.T) {
	b := NewBuilder(0)
	s1 := b.NewSite(Biased{P: 1})
	s2 := b.NewSite(Biased{P: 0})
	b.AddProc("main", []Node{&If{Site: s1}, &If{Site: s2}})
	prog, err := b.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.StaticBias(); got != 0.5 {
		t.Errorf("StaticBias = %v, want 0.5", got)
	}
}

func TestWalkerHistoryTracksOutcomes(t *testing.T) {
	prog := tinyProgram(t)
	w := NewWalker(prog, 3)
	var myHist uint64
	for i := 0; i < 1000; i++ {
		br, _ := w.Next()
		myHist = myHist<<1 | map[bool]uint64{true: 1, false: 0}[br.Taken]
		if w.History() != myHist {
			t.Fatalf("walker history diverged at event %d", i)
		}
	}
}

func BenchmarkWalkerNext(b *testing.B) {
	prog, err := Generate(GenConfig{Procs: 10, StaticBranches: 2000}, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := NewWalker(prog, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Next(); err != nil {
			b.Fatal(err)
		}
	}
}
