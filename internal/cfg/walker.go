package cfg

import (
	"fmt"

	"gskew/internal/rng"
	"gskew/internal/trace"
)

// maxDepth bounds the interpreter stack. Program.Validate guarantees a
// call DAG, so depth can never exceed the procedure count; this limit
// is a defence against builder bugs.
const maxDepth = 4096

type frameKind uint8

const (
	frameSeq  frameKind = iota // plain sequence (proc body, if arm)
	frameLoop                  // loop body; evaluates backedge at end
	frameCall                  // callee body; emits return jump at end
)

type frame struct {
	seq       []Node
	idx       int
	kind      frameKind
	loop      *Loop
	tripsLeft int
	returnPC  uint64
}

// Walker interprets a Program, producing an endless branch stream:
// when the entry procedure returns, it is immediately re-entered
// (modelling a server/event loop, which is how long traces behave).
// Walker implements trace.Source but never returns io.EOF; callers
// bound the stream themselves.
type Walker struct {
	prog    *Program
	r       *rng.Xoshiro256
	stack   []frame
	scratch []uint64 // per-site behaviour state
	hist    uint64   // recent outcomes, newest in bit 0
}

// NewWalker returns a Walker over prog seeded with seed.
func NewWalker(prog *Program, seed uint64) *Walker {
	w := &Walker{
		prog:    prog,
		r:       rng.NewXoshiro256(seed),
		scratch: make([]uint64, len(prog.sites)),
	}
	w.enterProc(prog.Entry, 0, false)
	return w
}

// History returns the walker's internal outcome history register
// (newest outcome in bit 0). Exposed for correlated-behaviour tests.
func (w *Walker) History() uint64 { return w.hist }

func (w *Walker) enterProc(idx int, returnPC uint64, isCall bool) {
	kind := frameSeq
	if isCall {
		kind = frameCall
	}
	w.stack = append(w.stack, frame{
		seq:      w.prog.Procs[idx].Body,
		kind:     kind,
		returnPC: returnPC,
	})
}

func (w *Walker) push(f frame) {
	if len(w.stack) >= maxDepth {
		panic(fmt.Sprintf("cfg: walker stack exceeded %d frames; program is not a DAG", maxDepth))
	}
	w.stack = append(w.stack, f)
}

func (w *Walker) shiftHist(taken bool) {
	w.hist <<= 1
	if taken {
		w.hist |= 1
	}
}

func (w *Walker) emitCond(site *CondSite, taken bool) trace.Branch {
	w.shiftHist(taken)
	return trace.Branch{PC: site.PC, Taken: taken, Kind: trace.Conditional}
}

func (w *Walker) emitUncond(pc uint64) trace.Branch {
	w.shiftHist(true)
	return trace.Branch{PC: pc, Taken: true, Kind: trace.Unconditional}
}

// Next implements trace.Source. It never returns an error.
func (w *Walker) Next() (trace.Branch, error) {
	for {
		top := &w.stack[len(w.stack)-1]
		if top.idx >= len(top.seq) {
			// End of this sequence.
			switch top.kind {
			case frameLoop:
				site := top.loop.Site
				if top.tripsLeft > 0 {
					top.tripsLeft--
					top.idx = 0
					return w.emitCond(site, true), nil
				}
				w.stack = w.stack[:len(w.stack)-1]
				return w.emitCond(site, false), nil
			case frameCall:
				pc := top.returnPC
				w.stack = w.stack[:len(w.stack)-1]
				return w.emitUncond(pc), nil
			default:
				w.stack = w.stack[:len(w.stack)-1]
				if len(w.stack) == 0 {
					// Entry procedure finished; restart it.
					w.enterProc(w.prog.Entry, 0, false)
				}
				continue
			}
		}

		node := top.seq[top.idx]
		top.idx++
		switch n := node.(type) {
		case Block:
			continue
		case *If:
			taken := n.Site.Behavior.Decide(w.r, w.hist, &w.scratch[n.Site.id])
			arm := n.Else
			if taken {
				arm = n.Then
			}
			ev := w.emitCond(n.Site, taken)
			if len(arm) > 0 {
				w.push(frame{seq: arm, kind: frameSeq})
			}
			return ev, nil
		case *Loop:
			trips := n.Trips.Sample(w.r)
			w.push(frame{seq: n.Body, kind: frameLoop, loop: n, tripsLeft: trips - 1})
			continue
		case *Call:
			callee := w.prog.Procs[n.Callee]
			w.enterProc(n.Callee, callee.ReturnPC, true)
			return w.emitUncond(n.PC), nil
		case *Jump:
			return w.emitUncond(n.PC), nil
		default:
			panic(fmt.Sprintf("cfg: unknown node type %T", node))
		}
	}
}

// Emit appends n branch events to dst and returns the extended slice.
func (w *Walker) Emit(dst []trace.Branch, n int) []trace.Branch {
	for i := 0; i < n; i++ {
		b, _ := w.Next()
		dst = append(dst, b)
	}
	return dst
}

// EmitConditionals appends events until n conditional branches have
// been produced (unconditional branches in between are included).
func (w *Walker) EmitConditionals(dst []trace.Branch, n int) []trace.Branch {
	count := 0
	for count < n {
		b, _ := w.Next()
		dst = append(dst, b)
		if b.Kind == trace.Conditional {
			count++
		}
	}
	return dst
}
