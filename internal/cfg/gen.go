package cfg

import (
	"fmt"

	"gskew/internal/rng"
)

// BehaviorMix gives the relative weights with which the generator
// assigns outcome behaviours to non-loop conditional sites. Weights
// need not sum to 1; they are normalised.
type BehaviorMix struct {
	// StronglyBiased sites are taken (or not) ~95% of the time.
	StronglyBiased float64
	// WeaklyBiased sites are ~75/25.
	WeaklyBiased float64
	// Correlated sites are a deterministic function of recent global
	// history plus a little noise.
	Correlated float64
	// Random sites are 50/50 and unlearnable.
	Random float64
	// Alternating sites flip in phases.
	Alternating float64
}

func (m BehaviorMix) total() float64 {
	return m.StronglyBiased + m.WeaklyBiased + m.Correlated + m.Random + m.Alternating
}

// DefaultMix is a mix calibrated so that an unaliased 2-bit predictor
// with a long history lands in the paper's 2-5% misprediction range:
// mostly biased branches, a solid correlated population, and a small
// unlearnable remainder.
var DefaultMix = BehaviorMix{
	StronglyBiased: 0.50,
	WeaklyBiased:   0.10,
	Correlated:     0.37,
	Random:         0.015,
	Alternating:    0.015,
}

// GenConfig parameterises random program generation.
type GenConfig struct {
	// Procs is the number of procedures (>= 1).
	Procs int
	// StaticBranches is the target number of conditional branch sites.
	StaticBranches int
	// Mix weights non-loop site behaviours. Zero value means DefaultMix.
	Mix BehaviorMix
	// LoopFraction of conditional sites are loop backedges (default 0.25).
	LoopFraction float64
	// CallFraction controls unconditional jump density per structural
	// slot (calls themselves form a random tree; default 0.18).
	CallFraction float64
	// MeanBlockSize spaces branch PCs apart (default 6 words).
	MeanBlockSize int
	// MeanTrips is the mean extra trip count of loops (default 6).
	MeanTrips float64
	// MaxHistBits bounds how far back correlated sites look (default 12).
	MaxHistBits uint
	// Base is the starting word address of the program text.
	Base uint64
}

func (c *GenConfig) fillDefaults() {
	if c.Procs < 1 {
		c.Procs = 1
	}
	if c.StaticBranches < 1 {
		c.StaticBranches = 1
	}
	if c.Mix.total() == 0 {
		c.Mix = DefaultMix
	}
	if c.LoopFraction <= 0 {
		c.LoopFraction = 0.18
	}
	if c.CallFraction <= 0 {
		c.CallFraction = 0.18
	}
	if c.MeanBlockSize <= 0 {
		c.MeanBlockSize = 6
	}
	if c.MeanTrips <= 0 {
		c.MeanTrips = 6
	}
	if c.MaxHistBits == 0 {
		c.MaxHistBits = 12
	}
}

// Generate builds a random program from cfg using the given seed. The
// program's conditional-site count equals cfg.StaticBranches exactly.
func Generate(cfg GenConfig, seed uint64) (*Program, error) {
	cfg.fillDefaults()
	r := rng.NewXoshiro256(seed)
	b := NewBuilder(cfg.Base)

	// Distribute the static-branch budget across procedures with a
	// random split that guarantees at least one site per procedure
	// (procedure count is capped by the budget).
	procs := cfg.Procs
	if procs > cfg.StaticBranches {
		procs = cfg.StaticBranches
	}
	budgets := make([]int, procs)
	for i := range budgets {
		budgets[i] = 1
	}
	for extra := cfg.StaticBranches - procs; extra > 0; extra-- {
		budgets[r.Intn(procs)]++
	}

	g := &generator{cfg: cfg, r: r, b: b, procs: procs}
	// Reserve one site from the entry procedure's budget for the main
	// processing loop added below.
	mainLoop := budgets[0] >= 2
	if mainLoop {
		budgets[0]--
	}
	bodies := make([][]Node, procs)
	for i := 0; i < procs; i++ {
		bodies[i] = g.genSeq(budgets[i], i, 0)
	}

	// Call graph. Dynamic procedure-execution counts compound
	// multiplicatively along call chains, so unconstrained random
	// calls make one program activation astronomically long. Instead,
	// the call graph is a random tree — every procedure j > 0 is
	// called exactly once per activation from a parent p < j — plus a
	// small number of extra cross-calls for irregularity. This keeps
	// an activation's dynamic length linear in the static site count,
	// so long traces revisit every site many times (high static
	// coverage, matching Table 1 accounting).
	insertCall := func(caller, callee int) {
		call := b.NewCall(callee)
		body := bodies[caller]
		pos := r.Intn(len(body) + 1)
		body = append(body, nil)
		copy(body[pos+1:], body[pos:])
		body[pos] = call
		bodies[caller] = body
	}
	for j := 1; j < procs; j++ {
		insertCall(r.Intn(j), j)
	}
	for extra := procs / 5; extra > 0; extra-- {
		i := r.Intn(procs - 1)
		insertCall(i, i+1+r.Intn(procs-i-1))
	}

	// Main processing loop: real programs (text formatters, decoders,
	// simulators) spend their time in one long outer loop whose body
	// touches most of the program, so the concurrently-live substream
	// set is wide. Without it, dynamics concentrate in a few tight
	// loops and conflict aliasing all but disappears — unlike the IBS
	// traces. Only the entry procedure is wrapped: wrapping callees
	// would compound trip counts multiplicatively down the call tree.
	if mainLoop {
		site := b.NewSite(g.loopBehavior())
		bodies[0] = []Node{&Loop{
			Site:  site,
			Body:  bodies[0],
			Trips: TripDist{Min: 8, MeanExtra: 3 * cfg.MeanTrips},
		}}
	}

	for i := 0; i < procs; i++ {
		b.AddProc(fmt.Sprintf("proc%d", i), bodies[i])
	}
	return b.Build(0)
}

type generator struct {
	cfg   GenConfig
	r     *rng.Xoshiro256
	b     *Builder
	procs int
}

// genSeq generates a sequence consuming exactly budget conditional
// sites. depth bounds structural nesting.
func (g *generator) genSeq(budget, procIdx, depth int) []Node {
	var seq []Node
	for budget > 0 {
		// Leading straight-line code.
		if g.r.Bool(0.7) {
			seq = append(seq, g.b.NewBlock(1+g.r.Intn(2*g.cfg.MeanBlockSize)))
		}
		// Occasional jump between regions (calls are inserted by
		// Generate after the call tree is chosen).
		if g.r.Bool(g.cfg.CallFraction) {
			seq = append(seq, g.b.NewJump())
		}

		// Structural element consuming some of the budget. Nested
		// regions take at most half the remaining budget so that most
		// sites stay on always-executed paths (keeping static-site
		// coverage high in realised traces).
		switch {
		case depth < 2 && budget >= 8 && g.r.Bool(0.2):
			// Dispatch: a balanced two-way split over large arms,
			// modelling switch-like per-iteration path selection
			// (character classes, opcode kinds). Each main-loop
			// iteration then touches only part of the program, which
			// keeps typical reuse distances — and hence the capacity
			// aliasing boundary — near the paper's, instead of every
			// iteration sweeping the full static footprint. Half the
			// dispatch sites are history-correlated (run-structured
			// input), half data-dependent.
			var behavior Behavior
			if g.r.Bool(0.75) {
				behavior = Correlated{Mask: g.pickMask(), Invert: g.r.Bool(0.5), Noise: 0.005}
			} else {
				behavior = Biased{P: 0.3 + 0.4*g.r.Float64()}
			}
			site := g.b.NewSite(behavior)
			arm := (budget - 1) / 3
			thenSeq := g.genSeq(arm, procIdx, depth+1)
			elseSeq := g.genSeq(arm, procIdx, depth+1)
			seq = append(seq, &If{Site: site, Then: thenSeq, Else: elseSeq})
			budget -= 1 + 2*arm
		case depth < 2 && budget >= 2 && g.r.Bool(g.cfg.LoopFraction):
			// Loop: backedge site plus a body consuming part of the
			// budget. Loop bodies always execute, so they may be big,
			// but nested loops get geometrically shorter trip counts
			// to keep one program activation's dynamic length bounded
			// (trip means multiply along a nest).
			// Wide bodies, moderate trips: a loop cycling a large body
			// keeps hundreds of substreams concurrently hot, which is
			// what makes distinct code regions (and processes) collide
			// in direct-mapped tables the way the IBS traces do.
			inner := (budget+1)/2 + g.r.Intn((budget+3)/4)
			if inner > budget-1 && budget >= 2 {
				inner = budget - 1
			}
			if inner < 1 {
				inner = 1
			}
			body := g.genSeq(inner, procIdx, depth+1)
			site := g.b.NewSite(g.loopBehavior())
			// Trip-count model, chosen for realistic dynamics: interior
			// loops are short FIXED-trip loops (fixed-size scans). A
			// global-history predictor learns them almost perfectly
			// once the history window distinguishes the iterations,
			// and — critically for the aliasing studies — they do not
			// concentrate the dynamic mass at tiny reuse distances:
			// most dynamic branches remain the once-per-main-iteration
			// body branches whose reuse distance is the program's live
			// substream set, as in the IBS traces. Only the per-program
			// main loop added by Generate is long.
			td := TripDist{Min: 8 + g.r.Intn(30)}
			seq = append(seq, &Loop{
				Site:  site,
				Body:  body,
				Trips: td,
			})
			budget -= inner + 1
		case depth < 4 && budget >= 3 && g.r.Bool(0.4):
			// If/else with nested arms. The larger arm goes on the
			// likely-taken side so nested sites execute often.
			behavior := g.pickBehavior()
			site := g.b.NewSite(behavior)
			remaining := budget - 1
			bigBudget := g.r.Intn(remaining/2 + 1)
			smallBudget := 0
			if remaining-bigBudget > 0 && g.r.Bool(0.5) {
				smallBudget = g.r.Intn((remaining-bigBudget)/4 + 1)
			}
			var bigSeq, smallSeq []Node
			if bigBudget > 0 {
				bigSeq = g.genSeq(bigBudget, procIdx, depth+1)
			} else {
				bigSeq = []Node{g.b.NewBlock(1 + g.r.Intn(4))}
			}
			if smallBudget > 0 {
				smallSeq = g.genSeq(smallBudget, procIdx, depth+1)
			}
			thenSeq, elseSeq := bigSeq, smallSeq
			if behavior.Bias() < 0.5 {
				thenSeq, elseSeq = smallSeq, bigSeq
			}
			seq = append(seq, &If{Site: site, Then: thenSeq, Else: elseSeq})
			budget -= 1 + bigBudget + smallBudget
		default:
			// Simple two-way branch with an empty-or-tiny arm.
			site := g.b.NewSite(g.pickBehavior())
			var thenSeq []Node
			if g.r.Bool(0.6) {
				thenSeq = []Node{g.b.NewBlock(1 + g.r.Intn(4))}
			}
			seq = append(seq, &If{Site: site, Then: thenSeq})
			budget--
		}
	}
	return seq
}

// loopBehavior is unused for the backedge decision itself (trip counts
// come from TripDist), but the site still carries a Bias estimate for
// calibration: loop backedges are mostly taken.
func (g *generator) loopBehavior() Behavior {
	mean := 1 + g.cfg.MeanTrips
	return Biased{P: 1 - 1/mean}
}

func (g *generator) pickBehavior() Behavior {
	m := g.cfg.Mix
	x := g.r.Float64() * m.total()
	switch {
	case x < m.StronglyBiased:
		// Guard/error-check branches: almost always one way. Real
		// integer code is dominated by these, which is what keeps the
		// paper's unaliased misprediction rates in the single digits.
		p := 0.975 + 0.024*g.r.Float64()
		if g.r.Bool(0.5) {
			p = 1 - p
		}
		return Biased{P: p}
	case x < m.StronglyBiased+m.WeaklyBiased:
		p := 0.90 + 0.08*g.r.Float64()
		if g.r.Bool(0.5) {
			p = 1 - p
		}
		return Biased{P: p}
	case x < m.StronglyBiased+m.WeaklyBiased+m.Correlated:
		return Correlated{Mask: g.pickMask(), Invert: g.r.Bool(0.5), Noise: 0.005 * g.r.Float64()}
	case x < m.StronglyBiased+m.WeaklyBiased+m.Correlated+m.Random:
		return Biased{P: 0.4 + 0.2*g.r.Float64()}
	default:
		return Alternating{Period: uint64(8 + g.r.Intn(25))}
	}
}

// pickMask draws a correlation mask of 1-2 history bits, concentrated
// on recent outcomes (60% within the last 4) with a tail reaching back
// MaxHistBits. This matches how real correlation decays with distance
// and gives longer predictor histories a steady accuracy payoff up to
// ~MaxHistBits, as in the paper's history-length sweeps.
func (g *generator) pickMask() uint64 {
	nbits := 1 + g.r.Intn(3)
	var mask uint64
	for i := 0; i < nbits; i++ {
		if g.r.Bool(0.4) {
			mask |= 1 << g.r.Intn(4)
		} else {
			mask |= 1 << g.r.Intn(int(g.cfg.MaxHistBits))
		}
	}
	return mask
}
