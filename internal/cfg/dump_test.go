package cfg

import (
	"strings"
	"testing"
)

func TestDumpHandWrittenProgram(t *testing.T) {
	b := NewBuilder(0x100)
	ifSite := b.NewSite(Biased{P: 0.97})
	loopSite := b.NewSite(Correlated{Mask: 0b101, Invert: true, Noise: 0.01})
	inner := b.NewSite(Alternating{Period: 4})
	call := b.NewCall(1)
	jump := b.NewJump()
	body0 := []Node{
		b.NewBlock(6),
		&If{Site: ifSite, Then: []Node{b.NewBlock(2)}, Else: []Node{jump}},
		&Loop{Site: loopSite, Body: []Node{&If{Site: inner}}, Trips: TripDist{Min: 3, MeanExtra: 2.5}},
		call,
	}
	b.AddProc("main", body0)
	b.AddProc("leaf", []Node{b.NewBlock(1)})
	prog, err := b.Build(0)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := prog.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`proc 0 "main"  (entry)`,
		"biased(0.97)",
		"correlated(mask=101,inv,noise=0.010)",
		"alternating(period=4)",
		"trips{min=3 mean+=2.5}",
		"call @",
		"-> proc 1",
		"jump @",
		"block size=6",
		"then:",
		"else:",
		`proc 1 "leaf"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpGeneratedProgram(t *testing.T) {
	prog, err := Generate(GenConfig{Procs: 4, StaticBranches: 60}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := prog.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Every site PC must appear in the dump.
	for _, site := range prog.Sites() {
		if !strings.Contains(out, "@0x") {
			t.Fatalf("no PCs rendered at all")
		}
		_ = site
	}
	if strings.Count(out, "proc ") < 4 {
		t.Errorf("dump lists fewer procs than generated:\n%s", out[:200])
	}
	// The entry proc's main loop must be visible.
	if !strings.Contains(out, "loop @") {
		t.Error("no loops rendered")
	}
}
