// Package cfg models synthetic programs as structured control-flow
// graphs and interprets them to produce branch traces.
//
// The IBS-Ultrix traces used by the paper are not publicly available,
// so this repository substitutes synthetic programs whose *branch
// statistics* — static site counts, outcome bias mix, loop structure,
// history correlation, call/jump density — are calibrated to the
// figures the paper reports (Table 1 and Table 2). A program here is a
// set of procedures, each a tree of sequences, if/else regions,
// bottom-tested loops, calls and jumps. Walking the tree emits a
// branch event stream with genuine control-flow-induced correlation:
// which branches execute, and with what history, depends on earlier
// outcomes exactly as in compiled code.
//
// Programs are immutable once built; all mutable execution state lives
// in a Walker, so one Program can drive many concurrent experiment
// runs.
package cfg

import (
	"fmt"

	"gskew/internal/rng"
)

// Behavior decides the outcome of a conditional branch site each time
// it executes. Implementations receive the walker's outcome history
// (newest outcome in bit 0, including unconditional branches as taken,
// matching what a global-history predictor observes) and a per-site
// scratch counter they may update.
type Behavior interface {
	// Decide returns the branch outcome. scratch is per-(walker, site)
	// mutable state, initially zero.
	Decide(r *rng.Xoshiro256, hist uint64, scratch *uint64) bool
	// Bias returns the site's long-run taken probability, used for
	// calibration and for the analytical model's bias parameter b.
	Bias() float64
}

// Biased is a behavior that is taken with fixed probability P,
// independent of history. Strongly biased sites (P near 0 or 1) model
// error checks and guard branches; P near 0.5 models data-dependent
// branches that no predictor can learn.
type Biased struct{ P float64 }

// Decide implements Behavior.
func (b Biased) Decide(r *rng.Xoshiro256, _ uint64, _ *uint64) bool { return r.Bool(b.P) }

// Bias implements Behavior.
func (b Biased) Bias() float64 { return b.P }

// Correlated computes its outcome from the global outcome history:
// taken iff the parity of (hist & Mask) equals Invert. A predictor
// with enough history bits can learn these sites perfectly; an
// address-only predictor sees a seemingly random branch. Noise flips
// the computed outcome with probability Noise.
type Correlated struct {
	Mask   uint64
	Invert bool
	Noise  float64
}

// Decide implements Behavior.
func (c Correlated) Decide(r *rng.Xoshiro256, hist uint64, _ *uint64) bool {
	v := hist & c.Mask
	// Parity of the masked bits.
	parity := false
	for v != 0 {
		parity = !parity
		v &= v - 1
	}
	out := parity != c.Invert
	if c.Noise > 0 && r.Bool(c.Noise) {
		out = !out
	}
	return out
}

// Bias implements Behavior. Correlated sites are balanced in the long
// run because the masked history bits are near-uniform.
func (c Correlated) Bias() float64 { return 0.5 }

// Alternating produces Period taken outcomes followed by Period
// not-taken outcomes, cycling. It models phase-structured branches
// (e.g. parity of a scan over alternating data).
type Alternating struct{ Period uint64 }

// Decide implements Behavior.
func (a Alternating) Decide(_ *rng.Xoshiro256, _ uint64, scratch *uint64) bool {
	p := a.Period
	if p == 0 {
		p = 1
	}
	out := (*scratch/p)%2 == 0
	*scratch++
	return out
}

// Bias implements Behavior.
func (a Alternating) Bias() float64 { return 0.5 }

// TripDist describes the per-entry trip count of a loop: a sample is
// Min plus a geometric tail with the given mean excess (MeanExtra = 0
// yields the constant Min).
type TripDist struct {
	Min       int
	MeanExtra float64
}

// Sample draws a trip count (always >= max(Min, 1)).
func (d TripDist) Sample(r *rng.Xoshiro256) int {
	n := d.Min
	if n < 1 {
		n = 1
	}
	if d.MeanExtra > 0 {
		// Geometric with mean MeanExtra has success prob 1/(1+mean).
		n += r.Geometric(1/(1+d.MeanExtra)) - 1
	}
	return n
}

// Node is one element of a procedure body. The concrete types are
// Block, If, Loop, Call and Jump.
type Node interface{ isNode() }

// Block is straight-line code with no branch. It occupies address
// space (so later branch PCs are spread realistically) but emits no
// trace events.
type Block struct{ Size int }

func (Block) isNode() {}

// CondSite is a static conditional branch site.
type CondSite struct {
	PC       uint64
	Behavior Behavior
	id       int // index into the walker's scratch array
}

// If is a two-armed conditional region. Taken executes Then; not-taken
// executes Else (either may be empty).
type If struct {
	Site *CondSite
	Then []Node
	Else []Node
}

func (*If) isNode() {}

// Loop is a bottom-tested loop: the body always executes at least
// once; the backedge branch at Site is taken to repeat the body.
type Loop struct {
	Site  *CondSite
	Body  []Node
	Trips TripDist
}

func (*Loop) isNode() {}

// Call transfers to another procedure, emitting an unconditional
// branch at the call site and another at the callee's return.
type Call struct {
	PC     uint64 // call instruction address
	Callee int    // procedure index; must be > caller's index (no recursion)
}

func (*Call) isNode() {}

// Jump is a direct unconditional branch (goto, tail of a switch).
type Jump struct{ PC uint64 }

func (*Jump) isNode() {}

// Proc is one procedure.
type Proc struct {
	Name     string
	Body     []Node
	ReturnPC uint64 // address of the return jump
}

// Program is an immutable synthetic program.
type Program struct {
	Procs []*Proc
	Entry int // index of the entry procedure

	sites []*CondSite // all conditional sites, indexed by id
}

// NumSites returns the number of static conditional branch sites.
func (p *Program) NumSites() int { return len(p.sites) }

// Sites returns all conditional branch sites. The slice must not be
// modified.
func (p *Program) Sites() []*CondSite { return p.sites }

// StaticBias returns the mean long-run taken probability across all
// sites — the paper's bias parameter b measured over static sites.
func (p *Program) StaticBias() float64 {
	if len(p.sites) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range p.sites {
		sum += s.Behavior.Bias()
	}
	return sum / float64(len(p.sites))
}

// Validate checks structural invariants: call targets in range and
// strictly increasing (guaranteeing termination of each activation),
// non-nil behaviors, and registered sites.
func (p *Program) Validate() error {
	if p.Entry < 0 || p.Entry >= len(p.Procs) {
		return fmt.Errorf("cfg: entry %d out of range", p.Entry)
	}
	for i, proc := range p.Procs {
		if err := p.validateSeq(proc.Body, i); err != nil {
			return fmt.Errorf("cfg: proc %d (%s): %w", i, proc.Name, err)
		}
	}
	return nil
}

func (p *Program) validateSeq(seq []Node, procIdx int) error {
	for _, n := range seq {
		switch n := n.(type) {
		case Block:
			if n.Size < 0 {
				return fmt.Errorf("negative block size")
			}
		case *If:
			if n.Site == nil || n.Site.Behavior == nil {
				return fmt.Errorf("if with nil site/behavior")
			}
			if err := p.validateSeq(n.Then, procIdx); err != nil {
				return err
			}
			if err := p.validateSeq(n.Else, procIdx); err != nil {
				return err
			}
		case *Loop:
			if n.Site == nil || n.Site.Behavior == nil {
				return fmt.Errorf("loop with nil site/behavior")
			}
			if err := p.validateSeq(n.Body, procIdx); err != nil {
				return err
			}
		case *Call:
			if n.Callee <= procIdx || n.Callee >= len(p.Procs) {
				return fmt.Errorf("call from proc %d to %d violates DAG ordering", procIdx, n.Callee)
			}
		case *Jump:
			// Always valid.
		default:
			return fmt.Errorf("unknown node type %T", n)
		}
	}
	return nil
}

// Builder assembles a Program, assigning PCs and site IDs.
type Builder struct {
	prog   *Program
	nextPC uint64
}

// NewBuilder starts a program whose code is laid out from base (a word
// address).
func NewBuilder(base uint64) *Builder {
	return &Builder{prog: &Program{}, nextPC: base}
}

// PC returns the next unassigned word address.
func (b *Builder) PC() uint64 { return b.nextPC }

// Skip advances the layout cursor by n words (inter-procedure padding).
func (b *Builder) Skip(n uint64) { b.nextPC += n }

// NewSite allocates a conditional branch site at the current PC.
func (b *Builder) NewSite(behavior Behavior) *CondSite {
	s := &CondSite{PC: b.nextPC, Behavior: behavior, id: len(b.prog.sites)}
	b.prog.sites = append(b.prog.sites, s)
	b.nextPC++
	return s
}

// NewBlock allocates a straight-line block of the given size.
func (b *Builder) NewBlock(size int) Block {
	b.nextPC += uint64(size)
	return Block{Size: size}
}

// NewCall allocates a call instruction targeting procedure callee.
func (b *Builder) NewCall(callee int) *Call {
	c := &Call{PC: b.nextPC, Callee: callee}
	b.nextPC++
	return c
}

// NewJump allocates a direct jump instruction.
func (b *Builder) NewJump() *Jump {
	j := &Jump{PC: b.nextPC}
	b.nextPC++
	return j
}

// AddProc appends a procedure with the given body and allocates its
// return-jump address. It returns the procedure index.
func (b *Builder) AddProc(name string, body []Node) int {
	p := &Proc{Name: name, Body: body, ReturnPC: b.nextPC}
	b.nextPC++
	b.prog.Procs = append(b.prog.Procs, p)
	return len(b.prog.Procs) - 1
}

// Build finalises the program with the given entry procedure.
func (b *Builder) Build(entry int) (*Program, error) {
	b.prog.Entry = entry
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}
