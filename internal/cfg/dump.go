package cfg

import (
	"fmt"
	"io"
	"strings"
)

// Dump writes a human-readable rendering of the program's structure —
// procedures, nesting, branch sites with their behaviours and PCs —
// for inspecting what the random generator actually built. Behaviour
// descriptions come from describeBehavior.
func (p *Program) Dump(w io.Writer) error {
	for i, proc := range p.Procs {
		entry := ""
		if i == p.Entry {
			entry = "  (entry)"
		}
		if _, err := fmt.Fprintf(w, "proc %d %q%s  [return @%#x]\n", i, proc.Name, entry, proc.ReturnPC); err != nil {
			return err
		}
		if err := dumpSeq(w, proc.Body, 1); err != nil {
			return err
		}
	}
	return nil
}

func dumpSeq(w io.Writer, seq []Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	for _, n := range seq {
		var err error
		switch n := n.(type) {
		case Block:
			_, err = fmt.Fprintf(w, "%sblock size=%d\n", indent, n.Size)
		case *If:
			_, err = fmt.Fprintf(w, "%sif @%#x %s\n", indent, n.Site.PC, describeBehavior(n.Site.Behavior))
			if err == nil && len(n.Then) > 0 {
				if _, err = fmt.Fprintf(w, "%sthen:\n", indent); err == nil {
					err = dumpSeq(w, n.Then, depth+1)
				}
			}
			if err == nil && len(n.Else) > 0 {
				if _, err = fmt.Fprintf(w, "%selse:\n", indent); err == nil {
					err = dumpSeq(w, n.Else, depth+1)
				}
			}
		case *Loop:
			_, err = fmt.Fprintf(w, "%sloop @%#x %s trips{min=%d mean+=%.1f}\n",
				indent, n.Site.PC, describeBehavior(n.Site.Behavior), n.Trips.Min, n.Trips.MeanExtra)
			if err == nil {
				err = dumpSeq(w, n.Body, depth+1)
			}
		case *Call:
			_, err = fmt.Fprintf(w, "%scall @%#x -> proc %d\n", indent, n.PC, n.Callee)
		case *Jump:
			_, err = fmt.Fprintf(w, "%sjump @%#x\n", indent, n.PC)
		default:
			_, err = fmt.Fprintf(w, "%s<unknown node %T>\n", indent, n)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// describeBehavior renders a Behavior compactly, e.g. "biased(0.97)"
// or "correlated(mask=101,inv)".
func describeBehavior(b Behavior) string {
	switch v := b.(type) {
	case Biased:
		return fmt.Sprintf("biased(%.2f)", v.P)
	case Correlated:
		inv := ""
		if v.Invert {
			inv = ",inv"
		}
		return fmt.Sprintf("correlated(mask=%b%s,noise=%.3f)", v.Mask, inv, v.Noise)
	case Alternating:
		return fmt.Sprintf("alternating(period=%d)", v.Period)
	default:
		return fmt.Sprintf("%T", b)
	}
}
