package kernel

import (
	"testing"

	"gskew/internal/counter"
	"gskew/internal/predictor"
	"gskew/internal/rng"
	"gskew/internal/skewfn"
)

// ref builds a fresh interface-path predictor for each case under test.
type compiled struct {
	name string
	hist uint // runner history width driven through both paths
	mk   func() predictor.Predictor
}

func cases() []compiled {
	return []compiled{
		{"bimodal", 0, func() predictor.Predictor { return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 2}) }},
		{"bimodal-1bit", 0, func() predictor.Predictor { return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 6, Ctr: 1}) }},
		{"gshare-short", 10, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: 6, Ctr: 2})
		}},
		{"gshare-equal", 10, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: 10, Ctr: 2})
		}},
		{"gshare-fold", 14, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 6, Hist: 14, Ctr: 2})
		}},
		{"gselect", 4, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gselect", N: 10, Hist: 4, Ctr: 2})
		}},
		{"gselect-degenerate", 12, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gselect", N: 8, Hist: 12, Ctr: 1})
		}},
		{"gskewed-partial", 8, func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 8})
		}},
		{"gskewed-total", 8, func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{
				BankBits: 6, HistoryBits: 8, Policy: predictor.TotalUpdate,
			})
		}},
		{"gskewed-1bit", 10, func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{BankBits: 7, HistoryBits: 10, CounterBits: 1})
		}},
		{"egskew", 10, func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{BankBits: 7, HistoryBits: 10, Enhanced: true})
		}},
		{"2bcgskew", 12, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "2bcgskew", N: 8, HistShort: 5, Hist: 12})
		}},
	}
}

// TestKernelMatchesInterfacePath: for every compiled family, a kernel
// and the interface Predict/Update pair, driven over the same
// randomized (pc, hist, taken) stream, must agree on every prediction
// and leave the underlying tables identical. The kernel is compiled
// from a SECOND predictor instance so the two paths train separate
// storage.
func TestKernelMatchesInterfacePath(t *testing.T) {
	for _, tc := range cases() {
		t.Run(tc.name, func(t *testing.T) {
			iface := tc.mk()
			kp := tc.mk()
			kern, ok := Compile(kp, tc.hist)
			if !ok {
				t.Fatalf("Compile(%s) not supported", iface.Name())
			}
			r := rng.NewXoshiro256(rng.Mix64(uint64(len(tc.name))))
			mask := uint64(1)<<tc.hist - 1
			hist := uint64(0)
			for i := 0; i < 60000; i++ {
				pc := r.Uint64() & 0x3fff
				taken := r.Uint64()&3 != 0
				ip := iface.Predict(pc, hist)
				iface.Update(pc, hist, taken)
				if got := kern.Step(pc, hist, taken); got != ip {
					t.Fatalf("step %d (pc=%#x hist=%#x taken=%v): interface predicts %v, kernel %v",
						i, pc, hist, taken, ip, got)
				}
				hist = (hist<<1 | b2u(taken)) & mask
			}
		})
	}
}

// TestKernelSharesStorage: a kernel trains the predictor's own tables,
// so after a kernel-driven stream the predictor's interface Predict
// agrees with a twin trained through the interface.
func TestKernelSharesStorage(t *testing.T) {
	mk := func() *predictor.GSkewed {
		return predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 6})
	}
	viaKernel, viaIface := mk(), mk()
	kern, ok := Compile(viaKernel, 6)
	if !ok {
		t.Fatal("gskewed did not compile")
	}
	r := rng.NewXoshiro256(7)
	hist := uint64(0)
	for i := 0; i < 20000; i++ {
		pc := r.Uint64() & 0xfff
		taken := r.Uint64()&1 == 0
		kern.Step(pc, hist, taken)
		viaIface.Predict(pc, hist)
		viaIface.Update(pc, hist, taken)
		hist = (hist<<1 | b2u(taken)) & 0x3f
	}
	Invalidate(viaKernel)
	for i := 0; i < 2000; i++ {
		pc := r.Uint64() & 0xfff
		h := r.Uint64() & 0x3f
		if viaKernel.Predict(pc, h) != viaIface.Predict(pc, h) {
			t.Fatalf("post-run state differs at pc=%#x hist=%#x", pc, h)
		}
	}
}

// TestCompileRejectsUncompilableShapes: organisations outside the
// kernel families must fall back rather than miscompile.
func TestCompileRejectsUncompilableShapes(t *testing.T) {
	fiveBank := predictor.MustGSkewed(predictor.Config{Banks: 5, BankBits: 6, HistoryBits: 6})
	if _, ok := Compile(fiveBank, 6); ok {
		t.Error("5-bank gskewed compiled; its extra index functions are outside the LUT family")
	}
	shared := predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 6, SharedHysteresis: 2})
	if _, ok := Compile(shared, 6); ok {
		t.Error("shared-hysteresis gskewed compiled; SplitTable banks have no flat cell array")
	}
	unal := predictor.NewUnaliased(8, 2)
	if _, ok := Compile(unal, 8); ok {
		t.Error("unaliased reference table compiled")
	}
	hyb := predictor.MustHybrid(predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 2}), predictor.MustSpec(predictor.Spec{Family: "gshare", N: 8, Hist: 6, Ctr: 2}), 8)
	if _, ok := Compile(hyb, 6); ok {
		t.Error("hybrid compiled")
	}
}

// TestLUTsMatchSkewer: every split-LUT pair reproduces the skewing
// functions exactly: fK(v) == aK[v1] ^ bK[v2] for exhaustive small
// widths.
func TestLUTsMatchSkewer(t *testing.T) {
	for _, n := range []uint{2, 3, 6, 8} {
		sk := skewfn.New(n)
		ls := lutsFor(n)
		size := uint64(1) << (2 * n)
		for v := uint64(0); v < size; v++ {
			v1 := v & sk.Mask()
			v2 := v >> n & sk.Mask()
			if got, want := uint64(ls.a0[v1]^ls.b0[v2]), sk.F0(v); got != want {
				t.Fatalf("n=%d v=%#x: f0 lut %#x, skewer %#x", n, v, got, want)
			}
			if got, want := uint64(ls.a1[v1]^ls.b1[v2]), sk.F1(v); got != want {
				t.Fatalf("n=%d v=%#x: f1 lut %#x, skewer %#x", n, v, got, want)
			}
			if got, want := uint64(ls.a2[v1]^ls.b2[v2]), sk.F2(v); got != want {
				t.Fatalf("n=%d v=%#x: f2 lut %#x, skewer %#x", n, v, got, want)
			}
		}
	}
}

// TestAutomatonMatchesCounter: the 256-entry transition tables agree
// with the counter automaton for every width and reachable state.
func TestAutomatonMatchesCounter(t *testing.T) {
	for bits := uint(1); bits <= 8; bits++ {
		a := automatonFor(bits)
		max := uint8(1)<<bits - 1
		for s := uint8(0); ; s++ {
			c := counter.New(bits, s)
			if a.pred[s] != c.Predict() {
				t.Fatalf("bits=%d state=%d: pred %v, counter %v", bits, s, a.pred[s], c.Predict())
			}
			if got, want := a.next[uint16(s)<<1|1], c.Update(true).Value(); got != want {
				t.Fatalf("bits=%d state=%d taken: next %d, counter %d", bits, s, got, want)
			}
			if got, want := a.next[uint16(s)<<1], c.Update(false).Value(); got != want {
				t.Fatalf("bits=%d state=%d not-taken: next %d, counter %d", bits, s, got, want)
			}
			if s == max {
				break
			}
		}
	}
}

// TestTamperLUTIsolatedFromCache: planting a fault must not poison the
// shared LUT cache used by honest kernels of the same geometry.
func TestTamperLUTIsolatedFromCache(t *testing.T) {
	mk := func() predictor.Predictor {
		return predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 6})
	}
	bad, _ := Compile(mk(), 6)
	if err := TamperLUT(bad, 1, 0, 0, 1); err != nil {
		t.Fatal(err)
	}
	good, _ := Compile(mk(), 6)
	gk, bk := good.(*skewKernel), bad.(*skewKernel)
	if gk.pa[0] == bk.pa[0] {
		t.Fatal("tamper had no effect")
	}
	if gk.pa[0] != lutsFor(6).pa[0] {
		t.Fatal("tamper leaked into the shared LUT cache")
	}
	bm, _ := Compile(predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 2}), 0)
	if err := TamperLUT(bm, 0, 0, 0, 1); err == nil {
		t.Error("TamperLUT accepted a kernel without LUTs")
	}
}

// TestStepBatchZeroAllocs is the allocation regression gate for the
// hot loop: a compiled kernel must process a prepared block with zero
// allocations per call.
func TestStepBatchZeroAllocs(t *testing.T) {
	steps := make([]Step, 4096)
	r := rng.NewXoshiro256(11)
	hist := uint64(0)
	for i := range steps {
		taken := r.Uint64()&1 == 0
		steps[i] = Step{PC: r.Uint64() & 0xffff, Hist: hist, Taken: taken}
		hist = hist<<1 | b2u(taken)
	}
	for _, tc := range cases() {
		t.Run(tc.name, func(t *testing.T) {
			kern, ok := Compile(tc.mk(), tc.hist)
			if !ok {
				t.Fatal("did not compile")
			}
			if allocs := testing.AllocsPerRun(10, func() { kern.StepBatch(steps) }); allocs != 0 {
				t.Errorf("StepBatch allocates %.1f objects per call, want 0", allocs)
			}
		})
	}
}

// TestStepBatchCountsMispredicts: the batch mispredict count equals a
// step-by-step tally.
func TestStepBatchCountsMispredicts(t *testing.T) {
	steps := make([]Step, 10000)
	r := rng.NewXoshiro256(13)
	hist := uint64(0)
	for i := range steps {
		taken := r.Uint64()&3 != 0
		steps[i] = Step{PC: r.Uint64() & 0x1fff, Hist: hist, Taken: taken}
		hist = hist<<1 | b2u(taken)
	}
	for _, tc := range cases() {
		batch, _ := Compile(tc.mk(), tc.hist)
		single, _ := Compile(tc.mk(), tc.hist)
		want := 0
		for i := range steps {
			if single.Step(steps[i].PC, steps[i].Hist, steps[i].Taken) != steps[i].Taken {
				want++
			}
		}
		if got := batch.StepBatch(steps); got != want {
			t.Errorf("%s: StepBatch counted %d mispredicts, stepwise %d", tc.name, got, want)
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
