package kernel

import "gskew/internal/predictor"

// 64-lane bitsliced kernels.
//
// A sweep cell commonly runs many predictors of the same family over
// one trace (ablation grids, the HTTP sweep endpoint, the verify
// matrix). The scalar kernels step those lanes one at a time; here the
// per-lane 2-bit counters are transposed into bitplanes — bit j of a
// uint64 plane is lane j's bit — so one SWAR expression steps all
// lanes' saturating-counter automata, majority votes and mispredict
// comparisons at once.
//
// The 2-bit automaton in bitplane form (hi = prediction bit, lo =
// hysteresis bit; predict taken iff hi, exactly automatonFor(2)):
//
//	increment: hi' = hi|lo,  lo' = hi|^lo   (0→1→2→3→3)
//	decrement: hi' = hi&lo,  lo' = hi&^lo   (3→2→1→0→0)
//
// All lanes share one trace, so the taken mask is all-ones or
// all-zeros per step and the blend of the two transitions is
// branch-free. Index computation and the table gather/scatter stay
// scalar per lane — they are memory operations on per-lane tables and
// independent across lanes, so they overlap in the pipeline — while
// everything that was a data-dependent branch in the scalar kernels
// (mispredict counting, the majority vote, the partial-update policy)
// becomes straight-line mask arithmetic. Per-lane mispredict counts
// accumulate in vertical ripple-carry counters: plane p holds bit p of
// every lane's count, so counting a step is a couple of XOR/ANDs
// instead of 64 conditional increments.
//
// Lanes must not share counter storage (each lane is its own
// predictor); one lane's three skewed banks are distinct tables by
// construction. Bit-identity with the scalar kernels — and through
// them with the paper specification — is enforced by the
// bitsliced arm of cmd/verify.
//
// Two table layouts, chosen at compile time:
//
//   - Mixed groups (lanes of the same kind but different index
//     functions) keep each lane's own uint8 table, aliased from the
//     predictor, and gather/scatter one byte per lane per step. The
//     SWAR arithmetic amortises only the automaton and the counting.
//   - Uniform groups (every lane computes the same index — the shape
//     RunMany replicated sweeps and the verify arm produce) store the
//     tables TRANSPOSED: entry e of a bank is a pair of plane words
//     (hi[e], lo[e]) holding bit j for lane j. A step is then two
//     word loads and two word stores per bank regardless of lane
//     count, which is where the >8x per-lane win over the scalar
//     kernels comes from. The planes are owned storage: Reload
//     re-transposes from the lane predictors (after an external
//     Reset), Writeback publishes the planes into them (before any
//     external read). Both are no-ops for mixed groups, so callers
//     may invoke them unconditionally.

// MaxLanes is the lane capacity of one Group64: the bitplane word
// width.
const MaxLanes = 64

// group64Kind separates the two fused step shapes.
type group64Kind uint8

const (
	group64Single group64Kind = iota // bimodal / gshare / gselect
	group64Skew                      // gskewed / egskew, three banks
)

// singleLaneKind selects the per-lane index function.
const (
	laneBimodal = iota
	laneGShare
	laneGSelect
)

// singleLane is one single-table lane: the scalar kernel's fields
// flattened so the gather loop runs without interface dispatch. The
// cells slice aliases the lane predictor's own storage.
type singleLane struct {
	cells    []uint8
	idxMask  uint64
	histMask uint64 // gshare
	hMask    uint64 // gselect
	aMask    uint64 // gselect
	shift    uint
	n        uint
	kind     uint8
	fold     bool
	histOnly bool
	idx      uint64 // scratch: this step's gathered index
}

func (ln *singleLane) index(pc, hist uint64) uint64 {
	switch ln.kind {
	case laneBimodal:
		return pc & ln.idxMask
	case laneGShare:
		h := hist & ln.histMask
		if ln.fold {
			out := uint64(0)
			for h != 0 {
				out ^= h & ln.idxMask
				h >>= ln.n
			}
			h = out
		} else {
			h <<= ln.shift
		}
		return (pc ^ h) & ln.idxMask
	default: // laneGSelect
		if ln.histOnly {
			return hist & ln.hMask & ln.idxMask
		}
		return (hist&ln.hMask)<<ln.shift | pc&ln.aMask
	}
}

// skewLane is one three-bank skewed lane. The bank slices alias the
// lane predictor's own storage; pa/pb are the shared packed LUTs.
type skewLane struct {
	b0, b1, b2 []uint8
	pa, pb     []uint64
	bankMask   uint64
	vHistMask  uint64
	n, kp      uint
	enhanced   bool
	i0, i1, i2 uint64 // scratch: this step's gathered indices
}

// Group64 is a compiled bitsliced group of up to 64 same-shape lanes.
// StepBatch64 steps every lane through a shared block of staged
// conditionals, bit-identically to running each lane's scalar kernel
// over the same block.
type Group64 struct {
	kind        group64Kind
	single      []singleLane
	skew        []skewLane
	partialMask uint64 // skew: bit j set when lane j uses partial update
	laneMask    uint64 // bits 0..lanes-1
	// Uniform fast path: when every lane shares one index function the
	// counters live here transposed (hiP[bank][entry] bit j = lane j's
	// prediction bit), and the lanes' own tables are stale until
	// Writeback. Single-table groups use bank 0 only.
	uniform  bool
	hiP, loP [3][]uint64
}

// stepChunk64 bounds one inner pass so the 16-plane vertical counters
// (per-lane counts < 2^16) cannot overflow. The sim runner's blocks
// are 4096 steps, well inside it.
const stepChunk64 = 8192

// CompileGroup64 lowers up to 64 predictors into one bitsliced group.
// Every lane must compile to the same kernel shape — all single-table
// (bimodal/gshare/gselect, mixable) or all three-bank skewed
// (gskewed/egskew, policies and enhanced mixable per lane) — with
// 2-bit counters (the bitplane automaton is the 2-bit one; other
// widths stay scalar). histBits[i] is lane i's runner history length,
// exactly as passed to Compile. ok is false when any lane is
// ineligible; callers then keep the scalar per-lane path.
func CompileGroup64(preds []predictor.Predictor, histBits []uint) (*Group64, bool) {
	if len(preds) == 0 || len(preds) > MaxLanes || len(histBits) != len(preds) {
		return nil, false
	}
	g := &Group64{}
	for i, p := range preds {
		k, ok := Compile(p, histBits[i])
		if !ok {
			return nil, false
		}
		switch kk := k.(type) {
		case *bimodalKernel:
			if kk.ctrBits != 2 || !g.admit(group64Single, i) {
				return nil, false
			}
			g.single = append(g.single, singleLane{
				kind: laneBimodal, cells: kk.cells, idxMask: kk.idxMask,
			})
		case *gshareKernel:
			if kk.ctrBits != 2 || !g.admit(group64Single, i) {
				return nil, false
			}
			g.single = append(g.single, singleLane{
				kind: laneGShare, cells: kk.cells, idxMask: kk.idxMask,
				histMask: kk.histMask, shift: kk.shift, fold: kk.fold, n: kk.n,
			})
		case *gselectKernel:
			if kk.ctrBits != 2 || !g.admit(group64Single, i) {
				return nil, false
			}
			g.single = append(g.single, singleLane{
				kind: laneGSelect, cells: kk.cells, idxMask: kk.idxMask,
				hMask: kk.hMask, aMask: kk.aMask, shift: kk.shift, histOnly: kk.histOnly,
			})
		case *skewKernel:
			if kk.ctrBits != 2 || !g.admit(group64Skew, i) {
				return nil, false
			}
			g.skew = append(g.skew, skewLane{
				b0: kk.b0, b1: kk.b1, b2: kk.b2,
				pa: kk.pa, pb: kk.pb,
				bankMask: kk.bankMask, vHistMask: kk.vHistMask,
				n: kk.n, kp: kk.kp, enhanced: kk.enhanced,
			})
			if kk.partial {
				g.partialMask |= uint64(1) << uint(i)
			}
		default:
			// 2Bc-gskew's meta/bimodal training rules do not bitslice
			// cleanly; it stays on its scalar kernel.
			return nil, false
		}
	}
	if len(preds) == MaxLanes {
		g.laneMask = ^uint64(0)
	} else {
		g.laneMask = uint64(1)<<uint(len(preds)) - 1
	}
	g.detectUniform()
	if g.uniform {
		banks, entries := 1, 0
		if g.kind == group64Skew {
			banks, entries = 3, len(g.skew[0].b0)
		} else {
			entries = len(g.single[0].cells)
		}
		for b := 0; b < banks; b++ {
			g.hiP[b] = make([]uint64, entries)
			g.loP[b] = make([]uint64, entries)
		}
		g.Reload()
	}
	return g, true
}

// detectUniform marks the group uniform when every lane's index
// function is the same — same kind and same masks/shifts, so every
// lane reads and writes the same entry of its own table each step.
// Counter state and update policy may still differ per lane (the
// skewed partial/total mix stays a lane mask).
func (g *Group64) detectUniform() {
	if g.kind == group64Skew {
		ln := &g.skew[0]
		for i := range g.skew {
			o := &g.skew[i]
			if o.bankMask != ln.bankMask || o.vHistMask != ln.vHistMask ||
				o.n != ln.n || o.kp != ln.kp || o.enhanced != ln.enhanced {
				return
			}
		}
		g.uniform = true
		return
	}
	ln := &g.single[0]
	for i := range g.single {
		o := &g.single[i]
		if o.kind != ln.kind || o.idxMask != ln.idxMask || o.histMask != ln.histMask ||
			o.hMask != ln.hMask || o.aMask != ln.aMask || o.shift != ln.shift ||
			o.n != ln.n || o.fold != ln.fold || o.histOnly != ln.histOnly ||
			len(o.cells) != len(ln.cells) {
			return
		}
	}
	g.uniform = true
}

// Uniform reports whether the group runs on the transposed-plane fast
// path (and therefore needs Reload/Writeback around external state
// access).
func (g *Group64) Uniform() bool { return g.uniform }

// laneBank returns lane j's bank b table in a skewed group.
func (g *Group64) laneBank(j, b int) []uint8 {
	switch b {
	case 0:
		return g.skew[j].b0
	case 1:
		return g.skew[j].b1
	default:
		return g.skew[j].b2
	}
}

// Reload re-transposes the lane predictors' tables into the plane
// arrays. Call it after mutating lane state externally (e.g. a flush
// Reset) on a uniform group; a no-op otherwise.
func (g *Group64) Reload() {
	if !g.uniform {
		return
	}
	banks := 1
	if g.kind == group64Skew {
		banks = 3
	}
	for b := 0; b < banks; b++ {
		hp, lp := g.hiP[b], g.loP[b]
		for e := range hp {
			var hi, lo uint64
			if g.kind == group64Skew {
				for j := range g.skew {
					s := g.laneBank(j, b)[e]
					hi |= uint64(s>>1&1) << uint(j)
					lo |= uint64(s&1) << uint(j)
				}
			} else {
				for j := range g.single {
					s := g.single[j].cells[e]
					hi |= uint64(s>>1&1) << uint(j)
					lo |= uint64(s&1) << uint(j)
				}
			}
			hp[e], lp[e] = hi, lo
		}
	}
}

// Writeback publishes the plane arrays into the lane predictors' own
// tables. Call it before reading lane state externally (end of run,
// final Predict probes) on a uniform group; a no-op otherwise.
func (g *Group64) Writeback() {
	if !g.uniform {
		return
	}
	banks := 1
	if g.kind == group64Skew {
		banks = 3
	}
	for b := 0; b < banks; b++ {
		hp, lp := g.hiP[b], g.loP[b]
		for e := range hp {
			hi, lo := hp[e], lp[e]
			if g.kind == group64Skew {
				for j := range g.skew {
					g.laneBank(j, b)[e] = uint8(hi>>uint(j)&1)<<1 | uint8(lo>>uint(j)&1)
				}
			} else {
				for j := range g.single {
					g.single[j].cells[e] = uint8(hi>>uint(j)&1)<<1 | uint8(lo>>uint(j)&1)
				}
			}
		}
	}
}

// admit fixes the group's shape on the first lane and rejects
// mismatched shapes after.
func (g *Group64) admit(kind group64Kind, lane int) bool {
	if lane == 0 {
		g.kind = kind
		return true
	}
	return g.kind == kind
}

// Lanes returns the number of lanes in the group.
func (g *Group64) Lanes() int {
	if g.kind == group64Skew {
		return len(g.skew)
	}
	return len(g.single)
}

// StepBatch64 steps every lane through steps and adds each lane's
// mispredict count into mis[lane]. mis must have at least Lanes()
// entries. It performs no allocation.
func (g *Group64) StepBatch64(steps []Step, mis []int) {
	for len(steps) > 0 {
		chunk := steps
		if len(chunk) > stepChunk64 {
			chunk = chunk[:stepChunk64]
		}
		switch {
		case g.uniform && g.kind == group64Skew:
			g.stepSkewU(chunk, mis)
		case g.uniform:
			g.stepSingleU(chunk, mis)
		case g.kind == group64Skew:
			g.stepSkew(chunk, mis)
		default:
			g.stepSingle(chunk, mis)
		}
		steps = steps[len(chunk):]
	}
}

// drainVC unpacks the vertical ripple-carry counters into per-lane
// totals: plane p holds bit p of every lane's count.
func drainVC(vc *[16]uint64, lanes int, mis []int) {
	for j := 0; j < lanes; j++ {
		n := 0
		for p := 0; p < len(vc); p++ {
			n |= int(vc[p]>>uint(j)&1) << uint(p)
		}
		mis[j] += n
	}
}

// countVC adds one step's mispredict mask into the vertical counters:
// a ripple-carry add of 1 to every lane whose bit is set in mm.
func countVC(vc *[16]uint64, mm uint64) {
	for p := 0; mm != 0 && p < len(vc); p++ {
		t := vc[p] & mm
		vc[p] ^= mm
		mm = t
	}
}

func (g *Group64) stepSingle(steps []Step, mis []int) {
	lanes := g.single
	var vc [16]uint64
	for si := range steps {
		st := &steps[si]
		pc, hist := st.PC, st.Hist
		var hi, lo uint64
		for j := range lanes {
			ln := &lanes[j]
			i := ln.index(pc, hist)
			ln.idx = i
			s := ln.cells[i]
			hi |= uint64(s>>1&1) << uint(j)
			lo |= uint64(s&1) << uint(j)
		}
		var tm uint64
		if st.Taken {
			tm = ^uint64(0)
		}
		// Prediction is the hi plane; mispredict lanes differ from tm.
		countVC(&vc, (hi^tm)&g.laneMask)
		nhi := (hi|lo)&tm | (hi & lo &^ tm)
		nlo := (hi|^lo)&tm | (hi &^ lo &^ tm)
		for j := range lanes {
			ln := &lanes[j]
			ln.cells[ln.idx] = uint8(nhi>>uint(j)&1)<<1 | uint8(nlo>>uint(j)&1)
		}
	}
	drainVC(&vc, len(lanes), mis)
}

// stepSingleU is stepSingle on the transposed layout: all lanes share
// one index, so a step is one plane-pair load, the SWAR automaton,
// and one plane-pair store — O(1) in the lane count. Stores are
// masked to laneMask so unused plane bits stay zero.
func (g *Group64) stepSingleU(steps []Step, mis []int) {
	ln := &g.single[0]
	hp, lp := g.hiP[0], g.loP[0]
	lm := g.laneMask
	var vc [16]uint64
	for si := range steps {
		st := &steps[si]
		i := ln.index(st.PC, st.Hist)
		hi, lo := hp[i], lp[i]
		var tm uint64
		if st.Taken {
			tm = ^uint64(0)
		}
		countVC(&vc, (hi^tm)&lm)
		hp[i] = ((hi|lo)&tm | (hi & lo &^ tm)) & lm
		lp[i] = ((hi|^lo)&tm | (hi &^ lo &^ tm)) & lm
	}
	drainVC(&vc, len(g.single), mis)
}

// stepSkewU is stepSkew on the transposed layout: shared three-bank
// indices, three plane-pair load/store pairs per step.
func (g *Group64) stepSkewU(steps []Step, mis []int) {
	ln := &g.skew[0]
	h0P, l0P := g.hiP[0], g.loP[0]
	h1P, l1P := g.hiP[1], g.loP[1]
	h2P, l2P := g.hiP[2], g.loP[2]
	lm := g.laneMask
	var vc [16]uint64
	for si := range steps {
		st := &steps[si]
		pc, hist := st.PC, st.Hist
		v := pc<<ln.kp | hist&ln.vHistMask
		v1 := v & ln.bankMask
		v2 := v >> ln.n & ln.bankMask
		pk := ln.pa[v1] ^ ln.pb[v2]
		i0 := pk & ln.bankMask
		if ln.enhanced {
			i0 = pc & ln.bankMask
		}
		i1 := pk >> lutField & ln.bankMask
		i2 := pk >> (2 * lutField) & ln.bankMask
		h0, l0 := h0P[i0], l0P[i0]
		h1, l1 := h1P[i1], l1P[i1]
		h2, l2 := h2P[i2], l2P[i2]
		var tm uint64
		if st.Taken {
			tm = ^uint64(0)
		}
		maj := h0&h1 | h1&h2 | h0&h2
		countVC(&vc, (maj^tm)&lm)
		majRight := ^(maj ^ tm)
		u0 := ^g.partialMask | majRight&^(h0^tm) | ^majRight
		u1 := ^g.partialMask | majRight&^(h1^tm) | ^majRight
		u2 := ^g.partialMask | majRight&^(h2^tm) | ^majRight
		nh0 := (h0|l0)&tm | (h0 & l0 &^ tm)
		nl0 := (h0|^l0)&tm | (h0 &^ l0 &^ tm)
		nh1 := (h1|l1)&tm | (h1 & l1 &^ tm)
		nl1 := (h1|^l1)&tm | (h1 &^ l1 &^ tm)
		nh2 := (h2|l2)&tm | (h2 & l2 &^ tm)
		nl2 := (h2|^l2)&tm | (h2 &^ l2 &^ tm)
		h0P[i0] = (nh0&u0 | h0&^u0) & lm
		l0P[i0] = (nl0&u0 | l0&^u0) & lm
		h1P[i1] = (nh1&u1 | h1&^u1) & lm
		l1P[i1] = (nl1&u1 | l1&^u1) & lm
		h2P[i2] = (nh2&u2 | h2&^u2) & lm
		l2P[i2] = (nl2&u2 | l2&^u2) & lm
	}
	drainVC(&vc, len(g.skew), mis)
}

func (g *Group64) stepSkew(steps []Step, mis []int) {
	lanes := g.skew
	var vc [16]uint64
	for si := range steps {
		st := &steps[si]
		pc, hist := st.PC, st.Hist
		var h0, l0, h1, l1, h2, l2 uint64
		for j := range lanes {
			ln := &lanes[j]
			v := pc<<ln.kp | hist&ln.vHistMask
			v1 := v & ln.bankMask
			v2 := v >> ln.n & ln.bankMask
			pk := ln.pa[v1] ^ ln.pb[v2]
			i0 := pk & ln.bankMask
			if ln.enhanced {
				i0 = pc & ln.bankMask
			}
			i1 := pk >> lutField & ln.bankMask
			i2 := pk >> (2 * lutField) & ln.bankMask
			ln.i0, ln.i1, ln.i2 = i0, i1, i2
			s0, s1, s2 := ln.b0[i0], ln.b1[i1], ln.b2[i2]
			bit := uint(j)
			h0 |= uint64(s0>>1&1) << bit
			l0 |= uint64(s0&1) << bit
			h1 |= uint64(s1>>1&1) << bit
			l1 |= uint64(s1&1) << bit
			h2 |= uint64(s2>>1&1) << bit
			l2 |= uint64(s2&1) << bit
		}
		var tm uint64
		if st.Taken {
			tm = ^uint64(0)
		}
		// Per-bank predictions are the hi planes; majority across the
		// three banks, then the paper's partial-update policy as lane
		// masks: a partial lane whose majority was right updates only
		// the banks that agreed with the outcome.
		maj := h0&h1 | h1&h2 | h0&h2
		countVC(&vc, (maj^tm)&g.laneMask)
		majRight := ^(maj ^ tm)
		u0 := ^g.partialMask | majRight&^(h0^tm) | ^majRight
		u1 := ^g.partialMask | majRight&^(h1^tm) | ^majRight
		u2 := ^g.partialMask | majRight&^(h2^tm) | ^majRight
		nh0 := (h0|l0)&tm | (h0 & l0 &^ tm)
		nl0 := (h0|^l0)&tm | (h0 &^ l0 &^ tm)
		nh1 := (h1|l1)&tm | (h1 & l1 &^ tm)
		nl1 := (h1|^l1)&tm | (h1 &^ l1 &^ tm)
		nh2 := (h2|l2)&tm | (h2 & l2 &^ tm)
		nl2 := (h2|^l2)&tm | (h2 &^ l2 &^ tm)
		fh0 := nh0&u0 | h0&^u0
		fl0 := nl0&u0 | l0&^u0
		fh1 := nh1&u1 | h1&^u1
		fl1 := nl1&u1 | l1&^u1
		fh2 := nh2&u2 | h2&^u2
		fl2 := nl2&u2 | l2&^u2
		for j := range lanes {
			ln := &lanes[j]
			bit := uint(j)
			ln.b0[ln.i0] = uint8(fh0>>bit&1)<<1 | uint8(fl0>>bit&1)
			ln.b1[ln.i1] = uint8(fh1>>bit&1)<<1 | uint8(fl1>>bit&1)
			ln.b2[ln.i2] = uint8(fh2>>bit&1)<<1 | uint8(fl2>>bit&1)
		}
	}
	drainVC(&vc, len(lanes), mis)
}

// GroupKind64 classifies p for bitsliced grouping without compiling
// it: lanes of the same class (and only those) can share a Group64.
// ok is false when p cannot join any group.
func GroupKind64(p predictor.Predictor) (kind int, ok bool) {
	sp, isSp := p.(predictor.Speccer)
	if !isSp {
		return 0, false
	}
	switch sp.Spec().Family {
	case "bimodal", "gshare", "gselect":
		s, isSingle := p.(*predictor.Single)
		if !isSingle || s.Table().Bits() != 2 {
			return 0, false
		}
		return int(group64Single), true
	case "gskewed", "egskew":
		gk, isSkew := p.(*predictor.GSkewed)
		if !isSkew {
			return 0, false
		}
		tabs := gk.BankTables()
		if len(tabs) != 3 || tabs[0].Bits() != 2 || gk.BankBits() > MaxLUTBits {
			return 0, false
		}
		return int(group64Skew), true
	}
	return 0, false
}
