package kernel

import (
	"sync"

	"gskew/internal/skewfn"
)

// The skew-index lowering rests on the GF(2) linearity of the paper's
// section 4.2 index functions. H is a bit permutation followed by a
// single XOR of two bits, so H — and therefore H⁻¹ — is a linear map
// on the vector space GF(2)^n, and each bank function
//
//	f0(V) = H(V1) ^ Hinv(V2) ^ V2
//	f1(V) = H(V1) ^ Hinv(V2) ^ V1
//	f2(V) = Hinv(V1) ^ H(V2) ^ V2
//
// is an XOR of linear images of the two disjoint bit substrings V1
// (low n bits of V) and V2 (next n bits). A linear map applied to a
// split input obeys L(x_hi ^ x_lo) = L(x_hi) ^ L(x_lo), so each f_k
// factors exactly into two table lookups:
//
//	f_k(V) = lutV1_k[V & mask] ^ lutV2_k[(V >> n) & mask]
//
// The tables below precompute the V1-side and V2-side images for each
// of the three bank functions. Entries are uint32 (bank indices are at
// most MaxLUTBits wide), so a full set for n-bit banks costs
// 6 x 2^n x 4 bytes.
//
// For the three-bank skewed kernels — where all banks index with the
// SAME vector V — the three per-bank images are additionally packed
// into one uint64 per entry (21-bit fields: f0 | f1<<21 | f2<<42).
// XOR distributes over the disjoint fields, so
//
//	packed(V) = pa[V1] ^ pb[V2]
//
// yields all three bank indices in two loads instead of six; at the
// paper's bank sizes the six scattered uint32 tables overflow L1
// while the two packed tables are two cache-line touches per branch.
// 2Bc-gskew cannot use the packing (its banks hash different vectors)
// and keeps the split tables.

// MaxLUTBits bounds the bank index width the compiled kernels
// support. At 18 bits (the paper's largest 256k-entry tables) one LUT
// set costs 10 MiB split+packed; wider configurations fall back to
// the generic predictor interface rather than trade memory for
// dispatch. 3*MaxLUTBits must stay under 64 for the packing.
const MaxLUTBits = 18

// lutField is the bit width of one bank's field in a packed entry.
const lutField = 21

// lutSet holds the six split lookup tables for one index width, plus
// the packed form. The aK table is indexed by V1, the bK table by V2;
// fK = aK[V1] ^ bK[V2], and f0|f1<<21|f2<<42 = pa[V1] ^ pb[V2].
type lutSet struct {
	a0, b0 []uint32
	a1, b1 []uint32
	a2, b2 []uint32
	pa, pb []uint64
}

// lutCache shares immutable LUT sets across kernels: the tables depend
// only on the index width, and experiment sweeps compile many kernels
// of the same geometry (possibly concurrently, under the scheduler).
var lutCache sync.Map // uint (index width) -> *lutSet

// lutsFor returns the shared LUT set for n-bit bank indices, building
// it on first use. Entries are computed with the same skewfn routines
// the interface path uses, so agreement is by construction and the
// differential harness checks it end to end.
func lutsFor(n uint) *lutSet {
	if v, ok := lutCache.Load(n); ok {
		return v.(*lutSet)
	}
	sk := skewfn.New(n)
	size := uint64(1) << n
	ls := &lutSet{
		a0: make([]uint32, size), b0: make([]uint32, size),
		a1: make([]uint32, size), b1: make([]uint32, size),
		a2: make([]uint32, size), b2: make([]uint32, size),
		pa: make([]uint64, size), pb: make([]uint64, size),
	}
	for x := uint64(0); x < size; x++ {
		h, hinv := sk.H(x), sk.Hinv(x)
		ls.a0[x] = uint32(h)        // f0's V1 side: H(V1)
		ls.b0[x] = uint32(hinv ^ x) // f0's V2 side: Hinv(V2) ^ V2
		ls.a1[x] = uint32(h ^ x)    // f1's V1 side: H(V1) ^ V1
		ls.b1[x] = uint32(hinv)     // f1's V2 side: Hinv(V2)
		ls.a2[x] = uint32(hinv)     // f2's V1 side: Hinv(V1)
		ls.b2[x] = uint32(h ^ x)    // f2's V2 side: H(V2) ^ V2
		ls.pa[x] = uint64(ls.a0[x]) | uint64(ls.a1[x])<<lutField | uint64(ls.a2[x])<<(2*lutField)
		ls.pb[x] = uint64(ls.b0[x]) | uint64(ls.b1[x])<<lutField | uint64(ls.b2[x])<<(2*lutField)
	}
	actual, _ := lutCache.LoadOrStore(n, ls)
	return actual.(*lutSet)
}

// automaton is a saturating counter lowered to transition tables: one
// 256-entry predict table and a 512-entry next-state table indexed by
// state<<1 | taken. Embedding it by value in each kernel keeps the
// lookups one load away from the kernel's other fields.
type automaton struct {
	next [512]uint8
	pred [256]bool
}

// automata caches the (at most eight) distinct counter automata.
var (
	automataMu sync.Mutex
	automata   [9]*automaton // indexed by counter width in bits
)

// automatonFor returns the transition tables for a width-bits
// saturating counter, matching counter.Table semantics exactly:
// predict taken when state > max/2, saturate at 0 and max.
func automatonFor(bits uint) automaton {
	automataMu.Lock()
	defer automataMu.Unlock()
	if a := automata[bits]; a != nil {
		return *a
	}
	a := &automaton{}
	max := int(uint(1)<<bits - 1)
	mid := max / 2
	for s := 0; s < 256; s++ {
		st := s
		if st > max {
			st = max // states beyond max are unreachable; clamp anyway
		}
		a.pred[s] = st > mid
		dn, up := st, st
		if dn > 0 {
			dn--
		}
		if up < max {
			up++
		}
		a.next[s<<1] = uint8(dn)
		a.next[s<<1|1] = uint8(up)
	}
	automata[bits] = a
	return *a
}
