// Package kernel compiles predictor configurations into monomorphized,
// allocation-free step functions — the simulation equivalent of the
// EV8 design study flattening e-gskew's index logic into hardware.
//
// The generic simulation path pays, per branch, an interface dispatch
// into predictor.Predictor, virtual counter.Table get/set calls, and a
// fresh evaluation of the H/H⁻¹ bit permutations for every skewed
// bank. A compiled kernel removes all of it: skew indices come from
// precomputed split lookup tables (H and H⁻¹ are GF(2)-linear, so
// f_k(V) = lut_hi[V>>n] ^ lut_lo[V&mask] per bank — see lut.go),
// saturating counters step through 256-entry next-state/predict
// tables, and the whole predict-then-train loop for a block of
// branches runs inside one concrete method with no interface calls.
//
// Kernels share storage with the predictor they were compiled from:
// the counter state arrays are the predictor's own backing cells, so a
// kernel-driven run leaves the predictor in exactly the state the
// interface path would have, and Reset on the predictor resets the
// kernel too. Compile recognizes the paper's table-based organisations
// (bimodal, gshare, gselect, gskewed and e-gskew under both update
// policies, and 2Bc-gskew); anything else — tagged reference tables,
// shared-hysteresis banks, five-bank skews, hybrids — reports ok ==
// false and stays on the generic path. Bit-identical behaviour of
// every compiled family is enforced by the differential harness
// (internal/refmodel/diff, cmd/verify), which drives each kernel
// against the executable paper specification.
package kernel

import (
	"fmt"

	"gskew/internal/indexfn"
	"gskew/internal/predictor"
)

// Step is one conditional-branch event, precomputed by the simulation
// runner: the word-aligned PC, the raw global-history value at the
// branch (the kernel masks it to its own configured length), and the
// resolved direction.
type Step struct {
	PC    uint64
	Hist  uint64
	Taken bool
}

// Kernel is a compiled predictor: a fused predict-then-train step
// function over flat arrays.
type Kernel interface {
	// Step runs one fused step and returns the prediction, exactly as
	// the predictor's Predict-then-Update pair would.
	Step(pc, hist uint64, taken bool) bool
	// StepBatch runs the fused step for every element of steps inside
	// one devirtualized loop and returns how many predictions differed
	// from the recorded outcome. It performs no allocation.
	StepBatch(steps []Step) (mispredicts int)
}

// Compile lowers p into a kernel, sharing p's counter storage.
// histBits is the history length the simulation runner drives p with
// (the runner's register width for this predictor, after any Options
// override); the kernel masks every Step.Hist to it before its own
// index computation, so raw wider-register values can be passed.
//
// ok is false when p's organisation is not one of the compiled
// families (or its geometry is out of LUT range); callers then use the
// generic interface path.
func Compile(p predictor.Predictor, histBits uint) (Kernel, bool) {
	if histBits > 63 {
		return nil, false
	}
	runnerMask := uint64(1)<<histBits - 1
	// Recognition is by reported Spec family: every compilable
	// organisation describes itself through the unified construction
	// surface, so a predictor that cannot state its Spec (hybrids,
	// custom index functions) stays on the generic path.
	sp, ok := p.(predictor.Speccer)
	if !ok {
		return nil, false
	}
	switch sp.Spec().Family {
	case "bimodal", "gshare", "gselect":
		if t, ok := p.(*predictor.Single); ok {
			return compileSingle(t, runnerMask)
		}
	case "gskewed", "egskew":
		if t, ok := p.(*predictor.GSkewed); ok {
			return compileSkew(t, runnerMask)
		}
	case "2bcgskew":
		if t, ok := p.(*predictor.TwoBcGSkew); ok {
			return compileTBC(t, runnerMask)
		}
	}
	return nil, false
}

// Invalidate drops any memoised read state p holds, if it holds any.
// Kernels train p's tables without going through p's methods, so a
// runner must call this after a kernel-driven run before p serves
// interface calls again.
func Invalidate(p predictor.Predictor) {
	if mi, ok := p.(predictor.MemoInvalidator); ok {
		mi.InvalidateMemo()
	}
}

func takenBit(taken bool) uint16 {
	if taken {
		return 1
	}
	return 0
}

// Single-table kernels

func compileSingle(s *predictor.Single, runnerMask uint64) (Kernel, bool) {
	cells := s.Table().Cells()
	bits := s.Table().Bits()
	aut := automatonFor(bits)
	switch fn := s.IndexFn().(type) {
	case *indexfn.Bimodal:
		return &bimodalKernel{
			aut: aut, cells: cells,
			idxMask: uint64(1)<<fn.Bits() - 1,
			ctrBits: bits,
		}, true
	case *indexfn.GShare:
		n, k := fn.Bits(), fn.HistoryBits()
		return &gshareKernel{
			aut: aut, cells: cells,
			idxMask:  uint64(1)<<n - 1,
			histMask: runnerMask & (uint64(1)<<k - 1),
			shift:    n - min(n, k),
			fold:     k > n,
			n:        n,
			ctrBits:  bits,
		}, true
	case *indexfn.GSelect:
		n, k := fn.Bits(), fn.HistoryBits()
		g := &gselectKernel{
			aut: aut, cells: cells,
			idxMask:  uint64(1)<<n - 1,
			histOnly: k >= n,
			ctrBits:  bits,
		}
		if !g.histOnly {
			g.aMask = uint64(1)<<(n-k) - 1
			g.hMask = runnerMask & (uint64(1)<<k - 1)
			g.shift = n - k
		} else {
			g.hMask = runnerMask
		}
		return g, true
	}
	return nil, false
}

type bimodalKernel struct {
	aut     automaton
	cells   []uint8
	idxMask uint64
	ctrBits uint
}

func (k *bimodalKernel) index(pc, _ uint64) uint64 { return pc & k.idxMask }

func (k *bimodalKernel) step1(pc, _ uint64, taken bool) bool {
	i := pc & k.idxMask
	s := k.cells[i]
	k.cells[i] = k.aut.next[uint16(s)<<1|takenBit(taken)]
	return k.aut.pred[s]
}

func (k *bimodalKernel) Step(pc, hist uint64, taken bool) bool { return k.step1(pc, hist, taken) }

func (k *bimodalKernel) StepBatch(steps []Step) int {
	mis := 0
	for i := range steps {
		s := &steps[i]
		if k.step1(s.PC, s.Hist, s.Taken) != s.Taken {
			mis++
		}
	}
	return mis
}

type gshareKernel struct {
	aut      automaton
	cells    []uint8
	idxMask  uint64
	histMask uint64 // runner mask ∧ index-function history mask
	shift    uint   // n-k alignment shift (footnote 1) when k <= n
	fold     bool   // k > n: XOR-fold the history down to n bits
	n        uint
	ctrBits  uint
}

func (k *gshareKernel) index(pc, hist uint64) uint64 {
	h := hist & k.histMask
	if k.fold {
		out := uint64(0)
		for h != 0 {
			out ^= h & k.idxMask
			h >>= k.n
		}
		h = out
	} else {
		h <<= k.shift
	}
	return (pc ^ h) & k.idxMask
}

func (k *gshareKernel) step1(pc, hist uint64, taken bool) bool {
	i := k.index(pc, hist)
	s := k.cells[i]
	k.cells[i] = k.aut.next[uint16(s)<<1|takenBit(taken)]
	return k.aut.pred[s]
}

func (k *gshareKernel) Step(pc, hist uint64, taken bool) bool { return k.step1(pc, hist, taken) }

func (k *gshareKernel) StepBatch(steps []Step) int {
	mis := 0
	for i := range steps {
		s := &steps[i]
		if k.step1(s.PC, s.Hist, s.Taken) != s.Taken {
			mis++
		}
	}
	return mis
}

type gselectKernel struct {
	aut      automaton
	cells    []uint8
	idxMask  uint64
	aMask    uint64
	hMask    uint64
	shift    uint
	histOnly bool // k >= n: the index is history alone
	ctrBits  uint
}

func (k *gselectKernel) index(pc, hist uint64) uint64 {
	if k.histOnly {
		return hist & k.hMask & k.idxMask
	}
	return (hist&k.hMask)<<k.shift | pc&k.aMask
}

func (k *gselectKernel) step1(pc, hist uint64, taken bool) bool {
	i := k.index(pc, hist)
	s := k.cells[i]
	k.cells[i] = k.aut.next[uint16(s)<<1|takenBit(taken)]
	return k.aut.pred[s]
}

func (k *gselectKernel) Step(pc, hist uint64, taken bool) bool { return k.step1(pc, hist, taken) }

func (k *gselectKernel) StepBatch(steps []Step) int {
	mis := 0
	for i := range steps {
		s := &steps[i]
		if k.step1(s.PC, s.Hist, s.Taken) != s.Taken {
			mis++
		}
	}
	return mis
}

// Skewed kernels

func compileSkew(g *predictor.GSkewed, runnerMask uint64) (Kernel, bool) {
	tabs := g.BankTables()
	if len(tabs) != 3 {
		// Shared-hysteresis banks (tabs == nil) or the 5-bank and wider
		// configurations, whose extra index functions are not in the
		// three-bank LUT family.
		return nil, false
	}
	n := g.BankBits()
	if n > MaxLUTBits {
		return nil, false
	}
	luts := lutsFor(n)
	kp := g.HistoryBits()
	k := &skewKernel{
		aut: automatonFor(tabs[0].Bits()),
		b0:  tabs[0].Cells(),
		b1:  tabs[1].Cells(),
		b2:  tabs[2].Cells(),
		pa:  luts.pa, pb: luts.pb,
		bankMask:  uint64(1)<<n - 1,
		n:         n,
		kp:        kp,
		vHistMask: runnerMask & (uint64(1)<<kp - 1),
		partial:   g.Policy() == predictor.PartialUpdate,
		enhanced:  g.Enhanced(),
		ctrBits:   tabs[0].Bits(),
	}
	return k, true
}

type skewKernel struct {
	aut automaton
	// b0..b2 alias the predictor's own bank cells.
	b0, b1, b2 []uint8
	// pa is indexed by V1, pb by V2; pa[V1]^pb[V2] yields all three
	// bank indices in 21-bit fields (f0 | f1<<21 | f2<<42).
	pa, pb    []uint64
	bankMask  uint64
	n         uint
	kp        uint   // predictor history length: V = (pc << kp) | hist
	vHistMask uint64 // runner mask ∧ predictor history mask
	partial   bool
	enhanced  bool // bank 0 indexed by address truncation (section 6)
	ctrBits   uint
}

// indices returns the three bank indices for one reference — a pure
// function of (pc, hist), shared by the step path, the touch pass and
// the bitsliced lanes.
func (k *skewKernel) indices(pc, hist uint64) (i0, i1, i2 uint64) {
	v := pc<<k.kp | hist&k.vHistMask
	v1 := v & k.bankMask
	v2 := v >> k.n & k.bankMask
	pk := k.pa[v1] ^ k.pb[v2]
	i0 = pk & k.bankMask
	if k.enhanced {
		i0 = pc & k.bankMask
	}
	i1 = pk >> lutField & k.bankMask
	i2 = pk >> (2 * lutField) & k.bankMask
	return i0, i1, i2
}

func (k *skewKernel) step1(pc, hist uint64, taken bool) bool {
	i0, i1, i2 := k.indices(pc, hist)
	s0, s1, s2 := k.b0[i0], k.b1[i1], k.b2[i2]
	p0, p1, p2 := k.aut.pred[s0], k.aut.pred[s1], k.aut.pred[s2]
	maj := p0 && (p1 || p2) || p1 && p2
	tb := takenBit(taken)
	if k.partial && maj == taken {
		// Partial update: the overall prediction was good, so banks
		// that dissented keep serving their own substreams.
		if p0 == taken {
			k.b0[i0] = k.aut.next[uint16(s0)<<1|tb]
		}
		if p1 == taken {
			k.b1[i1] = k.aut.next[uint16(s1)<<1|tb]
		}
		if p2 == taken {
			k.b2[i2] = k.aut.next[uint16(s2)<<1|tb]
		}
	} else {
		k.b0[i0] = k.aut.next[uint16(s0)<<1|tb]
		k.b1[i1] = k.aut.next[uint16(s1)<<1|tb]
		k.b2[i2] = k.aut.next[uint16(s2)<<1|tb]
	}
	return maj
}

func (k *skewKernel) Step(pc, hist uint64, taken bool) bool { return k.step1(pc, hist, taken) }

// StepBatch is step1 unrolled over a block with every slice hoisted
// into a local and every index masked by that slice's own length, so
// the compiler's prove pass can eliminate the bounds checks in the
// loop body (each mask equals bankMask by construction: both packed
// LUT halves and all banks have exactly 2^n entries).
func (k *skewKernel) StepBatch(steps []Step) int {
	pa, pb := k.pa, k.pb
	b0, b1, b2 := k.b0, k.b1, k.b2
	// Nonempty-slice guard: without it the len-1 masks below could
	// underflow, and the prover would have to keep every bounds check.
	if len(pa) == 0 || len(pb) == 0 || len(b0) == 0 || len(b1) == 0 || len(b2) == 0 {
		return 0
	}
	aut := &k.aut
	kp, n, vHistMask, bankMask := k.kp, k.n, k.vHistMask, k.bankMask
	enhanced, partial := k.enhanced, k.partial
	mis := 0
	for i := range steps {
		s := &steps[i]
		v := s.PC<<kp | s.Hist&vHistMask
		v1 := v & bankMask
		v2 := v >> n & bankMask
		pk := pa[v1&uint64(len(pa)-1)] ^ pb[v2&uint64(len(pb)-1)]
		i0 := pk & bankMask
		if enhanced {
			i0 = s.PC & bankMask
		}
		i0 &= uint64(len(b0) - 1)
		i1 := pk >> lutField & bankMask & uint64(len(b1)-1)
		i2 := pk >> (2 * lutField) & bankMask & uint64(len(b2)-1)
		s0, s1, s2 := b0[i0], b1[i1], b2[i2]
		p0, p1, p2 := aut.pred[s0], aut.pred[s1], aut.pred[s2]
		taken := s.Taken
		maj := p0 && (p1 || p2) || p1 && p2
		tb := takenBit(taken)
		if partial && maj == taken {
			if p0 == taken {
				b0[i0] = aut.next[uint16(s0)<<1|tb]
			}
			if p1 == taken {
				b1[i1] = aut.next[uint16(s1)<<1|tb]
			}
			if p2 == taken {
				b2[i2] = aut.next[uint16(s2)<<1|tb]
			}
		} else {
			b0[i0] = aut.next[uint16(s0)<<1|tb]
			b1[i1] = aut.next[uint16(s1)<<1|tb]
			b2[i2] = aut.next[uint16(s2)<<1|tb]
		}
		if maj != taken {
			mis++
		}
	}
	return mis
}

// 2Bc-gskew kernel

func compileTBC(t *predictor.TwoBcGSkew, runnerMask uint64) (Kernel, bool) {
	n := t.IndexBits()
	if n > MaxLUTBits {
		return nil, false
	}
	bim, g0, g1, meta := t.Tables()
	luts := lutsFor(n)
	k0, k1 := t.HistLengths()
	return &tbcKernel{
		aut:  automatonFor(bim.Bits()),
		bim:  bim.Cells(),
		g0:   g0.Cells(),
		g1:   g1.Cells(),
		meta: meta.Cells(),
		l0a:  luts.a0, l0b: luts.b0,
		l1a: luts.a1, l1b: luts.b1,
		l2a: luts.a2, l2b: luts.b2,
		idxMask: uint64(1)<<n - 1,
		n:       n,
		k0:      k0,
		k1:      k1,
		m0:      runnerMask & (uint64(1)<<k0 - 1),
		m1:      runnerMask & (uint64(1)<<k1 - 1),
	}, true
}

type tbcKernel struct {
	aut               automaton
	bim, g0, g1, meta []uint8
	l0a, l0b          []uint32
	l1a, l1b          []uint32
	l2a, l2b          []uint32
	idxMask           uint64
	n                 uint
	k0, k1            uint   // short and long history lengths
	m0, m1            uint64 // runner-combined history masks
}

// indices returns the four table indices for one reference. G0 and
// META index the short-history vector through f1 and f0; G1 indexes
// the long-history vector through f2 (see ev8.go).
func (k *tbcKernel) indices(pc, hist uint64) (iBim, iG0, iG1, iMeta uint64) {
	vA := pc<<k.k0 | hist&k.m0
	vB := pc<<k.k1 | hist&k.m1
	a1, a2 := vA&k.idxMask, vA>>k.n&k.idxMask
	c1, c2 := vB&k.idxMask, vB>>k.n&k.idxMask
	iBim = pc & k.idxMask
	iG0 = uint64(k.l1a[a1] ^ k.l1b[a2])
	iG1 = uint64(k.l2a[c1] ^ k.l2b[c2])
	iMeta = uint64(k.l0a[a1] ^ k.l0b[a2])
	return iBim, iG0, iG1, iMeta
}

func (k *tbcKernel) step1(pc, hist uint64, taken bool) bool {
	iBim, iG0, iG1, iMeta := k.indices(pc, hist)
	sB, s0, s1, sM := k.bim[iBim], k.g0[iG0], k.g1[iG1], k.meta[iMeta]
	pb, p0, p1 := k.aut.pred[sB], k.aut.pred[s0], k.aut.pred[s1]
	maj := pb && (p0 || p1) || p0 && p1
	overall := pb
	if useMaj := k.aut.pred[sM]; useMaj {
		overall = maj
		if overall == taken {
			// Majority in use and right: strengthen only the agreeing
			// direction tables.
			tb := takenBit(taken)
			if pb == taken {
				k.bim[iBim] = k.aut.next[uint16(sB)<<1|tb]
			}
			if p0 == taken {
				k.g0[iG0] = k.aut.next[uint16(s0)<<1|tb]
			}
			if p1 == taken {
				k.g1[iG1] = k.aut.next[uint16(s1)<<1|tb]
			}
		} else {
			tb := takenBit(taken)
			k.bim[iBim] = k.aut.next[uint16(sB)<<1|tb]
			k.g0[iG0] = k.aut.next[uint16(s0)<<1|tb]
			k.g1[iG1] = k.aut.next[uint16(s1)<<1|tb]
		}
	} else {
		tb := takenBit(taken)
		if overall == taken {
			// Bimodal in use and right: train it alone.
			k.bim[iBim] = k.aut.next[uint16(sB)<<1|tb]
		} else {
			k.bim[iBim] = k.aut.next[uint16(sB)<<1|tb]
			k.g0[iG0] = k.aut.next[uint16(s0)<<1|tb]
			k.g1[iG1] = k.aut.next[uint16(s1)<<1|tb]
		}
	}
	if (maj == taken) != (pb == taken) {
		k.meta[iMeta] = k.aut.next[uint16(sM)<<1|takenBit(maj == taken)]
	}
	return overall
}

func (k *tbcKernel) Step(pc, hist uint64, taken bool) bool { return k.step1(pc, hist, taken) }

func (k *tbcKernel) StepBatch(steps []Step) int {
	mis := 0
	for i := range steps {
		s := &steps[i]
		if k.step1(s.PC, s.Hist, s.Taken) != s.Taken {
			mis++
		}
	}
	return mis
}

// Fault injection

// TamperLUT XORs delta into one split-LUT entry of a compiled skewed
// kernel: bank selects the index function (0..2), half selects the V1
// (0) or V2 (1) table, entry the table slot. The kernel's LUT is
// copied before the fault is planted, so the shared cache stays clean.
// It exists for the differential harness's fault-injection self-test —
// a verifier that cannot catch a planted LUT off-by-one cannot be
// trusted to catch a real one — and returns an error for kernels
// without LUTs.
func TamperLUT(k Kernel, bank, half int, entry uint64, delta uint32) error {
	switch sk := k.(type) {
	case *skewKernel:
		// The three-bank kernel stores the packed form; the fault
		// lands in the selected bank's 21-bit field of the selected
		// half's entry — observationally identical to flipping the
		// same bits of a split table.
		if bank < 0 || bank > 2 || half < 0 || half > 1 {
			return fmt.Errorf("kernel: no LUT at bank %d half %d", bank, half)
		}
		slot := &sk.pa
		if half == 1 {
			slot = &sk.pb
		}
		if entry >= uint64(len(*slot)) {
			return fmt.Errorf("kernel: LUT entry %d out of range [0,%d)", entry, len(*slot))
		}
		cp := append([]uint64(nil), *slot...)
		cp[entry] ^= uint64(delta) << (uint(bank) * lutField)
		*slot = cp
		return nil
	case *tbcKernel:
		slot := lutSlot(&sk.l0a, &sk.l0b, &sk.l1a, &sk.l1b, &sk.l2a, &sk.l2b, bank, half)
		if slot == nil {
			return fmt.Errorf("kernel: no LUT at bank %d half %d", bank, half)
		}
		if entry >= uint64(len(*slot)) {
			return fmt.Errorf("kernel: LUT entry %d out of range [0,%d)", entry, len(*slot))
		}
		cp := append([]uint32(nil), *slot...)
		cp[entry] ^= delta
		*slot = cp
		return nil
	default:
		return fmt.Errorf("kernel: %T has no skew LUTs to tamper with", k)
	}
}

func lutSlot(a0, b0, a1, b1, a2, b2 *[]uint32, bank, half int) *[]uint32 {
	switch {
	case bank == 0 && half == 0:
		return a0
	case bank == 0 && half == 1:
		return b0
	case bank == 1 && half == 0:
		return a1
	case bank == 1 && half == 1:
		return b1
	case bank == 2 && half == 0:
		return a2
	case bank == 2 && half == 1:
		return b2
	}
	return nil
}
