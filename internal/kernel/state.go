package kernel

// StateKernel is the state-access surface every compiled kernel
// implements: the counter banks the kernel trains (aliasing the
// predictor's own storage, so reads and writes through them are reads
// and writes of the predictor) and an index-only pass marking which
// cells a block of steps touches.
//
// The segment-parallel runner (internal/sim) is built on two facts
// this interface exposes. First, every bank index is a pure function
// of the staged (PC, history) pair — counter state never feeds back
// into indexing — so the touched-cell set of a trace segment is
// identical between a speculatively warmed replica and the exact
// serial execution. Second, a segment's predictions read only its
// touched cells. Together these make the boundary convergence check
// sound: if a replica's warm state agrees with the exact state on the
// segment's touched set, the replica's segment execution is
// bit-identical to the serial one.
type StateKernel interface {
	Kernel
	// Banks returns the kernel's counter banks in a fixed order
	// (single-table kernels: one bank; skewed: banks 0..2; 2Bc-gskew:
	// BIM, G0, G1, META).
	Banks() [][]uint8
	// TouchBatch sets marks[b][i] = 1 for every cell i of bank b that
	// stepping steps would read or write, without mutating any
	// counter state. marks must hold one slice per bank, each of that
	// bank's length; existing marks are preserved (the pass only
	// sets). It performs no allocation.
	TouchBatch(steps []Step, marks [][]uint8)
}

func (k *bimodalKernel) Banks() [][]uint8 { return [][]uint8{k.cells} }

func (k *bimodalKernel) TouchBatch(steps []Step, marks [][]uint8) {
	m := marks[0]
	for i := range steps {
		m[k.index(steps[i].PC, steps[i].Hist)] = 1
	}
}

func (k *gshareKernel) Banks() [][]uint8 { return [][]uint8{k.cells} }

func (k *gshareKernel) TouchBatch(steps []Step, marks [][]uint8) {
	m := marks[0]
	for i := range steps {
		m[k.index(steps[i].PC, steps[i].Hist)] = 1
	}
}

func (k *gselectKernel) Banks() [][]uint8 { return [][]uint8{k.cells} }

func (k *gselectKernel) TouchBatch(steps []Step, marks [][]uint8) {
	m := marks[0]
	for i := range steps {
		m[k.index(steps[i].PC, steps[i].Hist)] = 1
	}
}

func (k *skewKernel) Banks() [][]uint8 { return [][]uint8{k.b0, k.b1, k.b2} }

func (k *skewKernel) TouchBatch(steps []Step, marks [][]uint8) {
	m0, m1, m2 := marks[0], marks[1], marks[2]
	for i := range steps {
		i0, i1, i2 := k.indices(steps[i].PC, steps[i].Hist)
		m0[i0] = 1
		m1[i1] = 1
		m2[i2] = 1
	}
}

func (k *tbcKernel) Banks() [][]uint8 { return [][]uint8{k.bim, k.g0, k.g1, k.meta} }

func (k *tbcKernel) TouchBatch(steps []Step, marks [][]uint8) {
	mB, m0, m1, mM := marks[0], marks[1], marks[2], marks[3]
	for i := range steps {
		iBim, iG0, iG1, iMeta := k.indices(steps[i].PC, steps[i].Hist)
		mB[iBim] = 1
		m0[iG0] = 1
		m1[iG1] = 1
		mM[iMeta] = 1
	}
}
