package kernel

import (
	"testing"

	"gskew/internal/predictor"
	"gskew/internal/rng"
)

// laneCase builds one lane of a bitsliced group; hist is the runner
// history width for that lane.
type laneCase struct {
	hist uint
	mk   func() predictor.Predictor
}

func singleLanes() []laneCase {
	return []laneCase{
		{0, func() predictor.Predictor { return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 2}) }},
		{0, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 10, Ctr: 2})
		}},
		{6, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: 6, Ctr: 2})
		}},
		{10, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 10, Hist: 10, Ctr: 2})
		}},
		{14, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 6, Hist: 14, Ctr: 2})
		}},
		{4, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gselect", N: 10, Hist: 4, Ctr: 2})
		}},
		{12, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gselect", N: 8, Hist: 12, Ctr: 2})
		}},
		{10, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gselect", N: 6, Hist: 10, Ctr: 2})
		}},
		{8, func() predictor.Predictor {
			return predictor.MustSpec(predictor.Spec{Family: "gshare", N: 9, Hist: 8, Ctr: 2})
		}},
	}
}

func skewLanes() []laneCase {
	return []laneCase{
		{8, func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 8})
		}},
		{8, func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{
				BankBits: 6, HistoryBits: 8, Policy: predictor.TotalUpdate,
			})
		}},
		{10, func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{BankBits: 7, HistoryBits: 10, Enhanced: true})
		}},
		{10, func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{BankBits: 7, HistoryBits: 10})
		}},
		{6, func() predictor.Predictor {
			return predictor.MustGSkewed(predictor.Config{
				BankBits: 5, HistoryBits: 6, Enhanced: true, Policy: predictor.TotalUpdate,
			})
		}},
	}
}

func mkSteps(n int, seed uint64) []Step {
	steps := make([]Step, n)
	r := rng.NewXoshiro256(seed)
	hist := uint64(0)
	for i := range steps {
		taken := r.Uint64()&3 != 0
		steps[i] = Step{PC: r.Uint64() & 0x3fff, Hist: hist, Taken: taken}
		hist = hist<<1 | b2u(taken)
	}
	return steps
}

// buildGroup replicates lanes round-robin up to want lanes and returns
// the group plus scalar twins compiled from identical predictors.
func buildGroup(t *testing.T, lanes []laneCase, want int) (*Group64, []Kernel) {
	t.Helper()
	preds := make([]predictor.Predictor, want)
	hists := make([]uint, want)
	twins := make([]Kernel, want)
	for i := 0; i < want; i++ {
		lc := lanes[i%len(lanes)]
		preds[i] = lc.mk()
		hists[i] = lc.hist
		tw, ok := Compile(lc.mk(), lc.hist)
		if !ok {
			t.Fatalf("lane %d scalar twin did not compile", i)
		}
		twins[i] = tw
	}
	g, ok := CompileGroup64(preds, hists)
	if !ok {
		t.Fatalf("CompileGroup64 rejected %d eligible lanes", want)
	}
	return g, twins
}

// TestGroup64MatchesScalar: a bitsliced group over a shared step block
// must produce, per lane, the same mispredict count and identical
// final counter state as that lane's scalar kernel.
func TestGroup64MatchesScalar(t *testing.T) {
	for _, tc := range []struct {
		name  string
		lanes []laneCase
		want  int
	}{
		{"single-9", singleLanes(), 9},
		{"single-64", singleLanes(), 64},
		{"skew-5", skewLanes(), 5},
		{"skew-64", skewLanes(), 64},
		{"single-1", singleLanes(), 1},
		// Replicated lane sets share one index function and take the
		// transposed uniform path; the skew pair mixes partial and
		// total update policies within one uniform group.
		{"single-u64", singleLanes()[:1], 64},
		{"skew-u64", skewLanes()[:2], 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// 20000 steps crosses the internal 8192-step chunking at
			// least twice.
			steps := mkSteps(20000, uint64(len(tc.name)))
			g, twins := buildGroup(t, tc.lanes, tc.want)
			if g.Lanes() != tc.want {
				t.Fatalf("Lanes() = %d, want %d", g.Lanes(), tc.want)
			}
			mis := make([]int, tc.want)
			g.StepBatch64(steps, mis)
			for j, tw := range twins {
				if want := tw.StepBatch(steps); mis[j] != want {
					t.Errorf("lane %d: bitsliced counted %d mispredicts, scalar %d", j, mis[j], want)
				}
			}
			// mis accumulates across calls.
			before := append([]int(nil), mis...)
			g.StepBatch64(steps[:100], mis)
			for j, tw := range twins {
				if want := before[j] + tw.StepBatch(steps[:100]); mis[j] != want {
					t.Errorf("lane %d: second call did not accumulate (got %d, want %d)", j, mis[j], want)
				}
			}
		})
	}
}

// TestGroup64UniformSync: uniform groups own their counter planes, so
// the lane predictors' tables are stale until Writeback and go stale
// again after external mutation until Reload. The test round-trips
// both: run bitsliced, write back, continue each lane on its own
// scalar kernel; then reset everything, reload, and run bitsliced
// again — always against scalar twins fed the identical stream.
func TestGroup64UniformSync(t *testing.T) {
	for _, tc := range []struct {
		name  string
		lanes []laneCase
		want  int
	}{
		{"single", singleLanes()[2:3], 64},
		{"skew", skewLanes()[:2], 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			steps := mkSteps(12000, uint64(len(tc.name)))
			preds := make([]predictor.Predictor, tc.want)
			hists := make([]uint, tc.want)
			twins := make([]Kernel, tc.want)
			for i := 0; i < tc.want; i++ {
				lc := tc.lanes[i%len(tc.lanes)]
				preds[i] = lc.mk()
				hists[i] = lc.hist
				tw, ok := Compile(lc.mk(), lc.hist)
				if !ok {
					t.Fatalf("lane %d scalar twin did not compile", i)
				}
				twins[i] = tw
			}
			g, ok := CompileGroup64(preds, hists)
			if !ok {
				t.Fatal("CompileGroup64 rejected eligible lanes")
			}
			if !g.Uniform() {
				t.Fatal("replicated lane set did not take the uniform path")
			}
			mis := make([]int, tc.want)
			g.StepBatch64(steps[:8000], mis)
			g.Writeback()
			for j, tw := range twins {
				if want := tw.StepBatch(steps[:8000]); mis[j] != want {
					t.Errorf("lane %d: bitsliced counted %d mispredicts, scalar %d", j, mis[j], want)
				}
				// After Writeback the lane predictor holds the group
				// state; a scalar kernel over it must track the twin.
				k, ok := Compile(preds[j], hists[j])
				if !ok {
					t.Fatalf("lane %d did not recompile", j)
				}
				if got, want := k.StepBatch(steps[8000:]), tw.StepBatch(steps[8000:]); got != want {
					t.Errorf("lane %d: post-writeback scalar continuation %d mispredicts, twin %d", j, got, want)
				}
			}
			// External mutation (the scalar continuation above) followed
			// by Reload must resynchronise the planes.
			g.Reload()
			for j := range mis {
				mis[j] = 0
			}
			g.StepBatch64(steps, mis)
			for j, tw := range twins {
				if want := tw.StepBatch(steps); mis[j] != want {
					t.Errorf("lane %d: post-reload bitsliced %d mispredicts, scalar %d", j, mis[j], want)
				}
			}
		})
	}
	// Mixed-shape groups stay on the aliased layout; the sync calls
	// must be safe no-ops there.
	g, _ := buildGroup(t, singleLanes(), 9)
	if g.Uniform() {
		t.Fatal("mixed lane set claimed the uniform path")
	}
	g.Writeback()
	g.Reload()
}

// TestGroup64Rejects: ineligible lane sets must fall back to scalar.
func TestGroup64Rejects(t *testing.T) {
	mixed := []predictor.Predictor{
		predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 2}),
		predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 6}),
	}
	if _, ok := CompileGroup64(mixed, []uint{0, 6}); ok {
		t.Error("mixed single/skew shapes grouped")
	}
	oneBit := []predictor.Predictor{predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 1})}
	if _, ok := CompileGroup64(oneBit, []uint{0}); ok {
		t.Error("1-bit counters grouped; the bitplane automaton is 2-bit only")
	}
	tbc := []predictor.Predictor{predictor.MustSpec(predictor.Spec{Family: "2bcgskew", N: 8, HistShort: 5, Hist: 12})}
	if _, ok := CompileGroup64(tbc, []uint{12}); ok {
		t.Error("2Bc-gskew grouped")
	}
	if _, ok := CompileGroup64(nil, nil); ok {
		t.Error("empty lane set grouped")
	}
	over := make([]predictor.Predictor, MaxLanes+1)
	hists := make([]uint, MaxLanes+1)
	for i := range over {
		over[i] = predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 2})
	}
	if _, ok := CompileGroup64(over, hists); ok {
		t.Error("65 lanes grouped into one 64-bit plane")
	}
}

// TestGroupKind64AgreesWithCompile: the cheap pre-classification used
// for sweep grouping must accept exactly what CompileGroup64 accepts.
func TestGroupKind64AgreesWithCompile(t *testing.T) {
	all := append(append([]laneCase{}, singleLanes()...), skewLanes()...)
	for i, lc := range all {
		p := lc.mk()
		kind, ok := GroupKind64(p)
		if !ok {
			t.Errorf("lane %d (%s): GroupKind64 rejected an eligible predictor", i, p.Name())
			continue
		}
		if _, ok := CompileGroup64([]predictor.Predictor{p}, []uint{lc.hist}); !ok {
			t.Errorf("lane %d (%s): kind %d classified but group compile failed", i, p.Name(), kind)
		}
	}
	for _, p := range []predictor.Predictor{
		predictor.MustSpec(predictor.Spec{Family: "bimodal", N: 8, Ctr: 1}),
		predictor.MustSpec(predictor.Spec{Family: "2bcgskew", N: 8, HistShort: 5, Hist: 12}),
		predictor.MustGSkewed(predictor.Config{BankBits: 6, HistoryBits: 6, CounterBits: 1}),
		predictor.NewUnaliased(8, 2),
	} {
		if _, ok := GroupKind64(p); ok {
			t.Errorf("%s: GroupKind64 accepted an ineligible predictor", p.Name())
		}
	}
}

// TestStepBatch64ZeroAllocs is the allocation gate for the bitsliced
// hot loop.
func TestStepBatch64ZeroAllocs(t *testing.T) {
	steps := mkSteps(4096, 17)
	for _, tc := range []struct {
		name  string
		lanes []laneCase
	}{
		{"single", singleLanes()},
		{"skew", skewLanes()},
		{"single-uniform", singleLanes()[:1]},
		{"skew-uniform", skewLanes()[:1]},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, _ := buildGroup(t, tc.lanes, 64)
			mis := make([]int, 64)
			if allocs := testing.AllocsPerRun(10, func() { g.StepBatch64(steps, mis) }); allocs != 0 {
				t.Errorf("StepBatch64 allocates %.1f objects per call, want 0", allocs)
			}
		})
	}
}

// TestTouchBatch: the touched-cell marks must cover every cell the
// same block mutates, and the marking pass itself must not disturb
// counter state or allocate.
func TestTouchBatch(t *testing.T) {
	steps := mkSteps(8000, 23)
	for _, tc := range cases() {
		t.Run(tc.name, func(t *testing.T) {
			kern, ok := Compile(tc.mk(), tc.hist)
			if !ok {
				t.Fatal("did not compile")
			}
			sk, ok := kern.(StateKernel)
			if !ok {
				t.Fatal("compiled kernel does not expose StateKernel")
			}
			banks := sk.Banks()
			before := make([][]uint8, len(banks))
			marks := make([][]uint8, len(banks))
			for b, cells := range banks {
				before[b] = append([]uint8(nil), cells...)
				marks[b] = make([]uint8, len(cells))
			}
			sk.TouchBatch(steps, marks)
			for b, cells := range banks {
				for i := range cells {
					if cells[i] != before[b][i] {
						t.Fatalf("TouchBatch mutated bank %d cell %d", b, i)
					}
				}
			}
			if allocs := testing.AllocsPerRun(10, func() { sk.TouchBatch(steps, marks) }); allocs != 0 {
				t.Errorf("TouchBatch allocates %.1f objects per call, want 0", allocs)
			}
			kern.StepBatch(steps)
			for b, cells := range banks {
				for i := range cells {
					if cells[i] != before[b][i] && marks[b][i] == 0 {
						t.Errorf("bank %d cell %d changed but was not marked touched", b, i)
					}
				}
			}
		})
	}
}
