package predictor

import (
	"testing"

	"gskew/internal/indexfn"
	"gskew/internal/rng"
	"gskew/internal/skewfn"
)

// trainUntil updates p with (addr, hist, taken) n times.
func train(p Predictor, addr, hist uint64, taken bool, n int) {
	for i := 0; i < n; i++ {
		p.Update(addr, hist, taken)
	}
}

func TestSingleLearnsDirection(t *testing.T) {
	for _, p := range []Predictor{
		MustSpec(Spec{Family: "gshare", N: 10, Hist: 8, Ctr: 2}),
		MustSpec(Spec{Family: "gselect", N: 10, Hist: 8, Ctr: 2}),
		MustSpec(Spec{Family: "bimodal", N: 10, Ctr: 2}),
	} {
		train(p, 0x400, 0xa5, false, 4)
		if p.Predict(0x400, 0xa5) {
			t.Errorf("%s did not learn not-taken", p.Name())
		}
		train(p, 0x400, 0xa5, true, 8)
		if !p.Predict(0x400, 0xa5) {
			t.Errorf("%s did not relearn taken", p.Name())
		}
	}
}

func TestSingleStorageBits(t *testing.T) {
	if got := MustSpec(Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2}).StorageBits(); got != 1<<14*2 {
		t.Errorf("16k gshare StorageBits = %d, want %d", got, 1<<15)
	}
	if got := MustSpec(Spec{Family: "bimodal", N: 10, Ctr: 1}).StorageBits(); got != 1024 {
		t.Errorf("1k bimodal 1-bit StorageBits = %d", got)
	}
}

func TestSingleReset(t *testing.T) {
	p := MustSpec(Spec{Family: "gshare", N: 8, Hist: 4, Ctr: 2})
	train(p, 0x10, 0x3, false, 4)
	p.Reset()
	if !p.Predict(0x10, 0x3) {
		t.Error("Reset did not restore weakly-taken default")
	}
}

func TestSingleString(t *testing.T) {
	if got := MustSpec(Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2}).(*Single).String(); got != "16k-gshare(h12,2bit)" {
		t.Errorf("String() = %q", got)
	}
	if got := MustSpec(Spec{Family: "bimodal", N: 9, Ctr: 2}).(*Single).String(); got != "512-bimodal(h0,2bit)" {
		t.Errorf("String() = %q", got)
	}
}

func TestSingleHistoryMattersForGShare(t *testing.T) {
	// gshare must separate the same address under different histories
	// (when they land on different entries); bimodal must not.
	gs := MustSpec(Spec{Family: "gshare", N: 10, Hist: 10, Ctr: 2})
	train(gs, 0x77, 0x000, true, 4)
	train(gs, 0x77, 0x3ff, false, 4)
	if !gs.Predict(0x77, 0x000) || gs.Predict(0x77, 0x3ff) {
		t.Error("gshare failed to separate substreams of one branch")
	}
	bm := MustSpec(Spec{Family: "bimodal", N: 10, Ctr: 2})
	train(bm, 0x77, 0x000, true, 4)
	if bm.Predict(0x77, 0x000) != bm.Predict(0x77, 0x3ff) {
		t.Error("bimodal should ignore history")
	}
}

func TestGSkewedConfigValidation(t *testing.T) {
	bad := []Config{
		{Banks: 2, BankBits: 10},                 // even
		{Banks: 1, BankBits: 10},                 // too few
		{Banks: 5, BankBits: 10, Enhanced: true}, // enhanced needs 3
		{Banks: 3, BankBits: 1},                  // width too small
		{Banks: 3, BankBits: 31},                 // width too large
		{Banks: 3, BankBits: 10, HistoryBits: 31},
	}
	for i, cfg := range bad {
		if _, err := NewGSkewed(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewGSkewed(Config{BankBits: 10}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestGSkewedDefaults(t *testing.T) {
	g := MustGSkewed(Config{BankBits: 10, HistoryBits: 4})
	if g.Banks() != 3 {
		t.Errorf("default Banks = %d", g.Banks())
	}
	if g.BankEntries() != 1024 {
		t.Errorf("BankEntries = %d", g.BankEntries())
	}
	if g.StorageBits() != 3*1024*2 {
		t.Errorf("StorageBits = %d", g.StorageBits())
	}
	if g.Policy() != PartialUpdate {
		t.Errorf("default policy = %v", g.Policy())
	}
	if got := g.String(); got != "3x1k-gskewed(h4,2bit,partial)" {
		t.Errorf("String() = %q", got)
	}
}

func TestGSkewedLearns(t *testing.T) {
	for _, policy := range []UpdatePolicy{PartialUpdate, TotalUpdate} {
		g := MustGSkewed(Config{BankBits: 10, HistoryBits: 8, Policy: policy})
		train(g, 0x1234, 0x5a, false, 4)
		if g.Predict(0x1234, 0x5a) {
			t.Errorf("policy %v: did not learn not-taken", policy)
		}
		train(g, 0x1234, 0x5a, true, 8)
		if !g.Predict(0x1234, 0x5a) {
			t.Errorf("policy %v: did not relearn taken", policy)
		}
	}
}

func TestGSkewedIndicesMatchSkewFunctions(t *testing.T) {
	const n, k = 10, 6
	g := MustGSkewed(Config{BankBits: n, HistoryBits: k})
	s := skewfn.New(n)
	r := rng.NewXoshiro256(1)
	for i := 0; i < 1000; i++ {
		addr, hist := r.Uint64(), r.Uint64n(1<<k)
		v := indexfn.Vector(addr, hist, k)
		got := g.IndicesFor(addr, hist)
		want := []uint64{s.F0(v), s.F1(v), s.F2(v)}
		for b := range want {
			if got[b] != want[b] {
				t.Fatalf("bank %d index = %#x, want %#x", b, got[b], want[b])
			}
		}
	}
}

func TestEnhancedBank0IsAddressIndexed(t *testing.T) {
	const n, k = 10, 12
	g := MustGSkewed(Config{BankBits: n, HistoryBits: k, Enhanced: true})
	s := skewfn.New(n)
	r := rng.NewXoshiro256(2)
	for i := 0; i < 1000; i++ {
		addr, hist := r.Uint64(), r.Uint64n(1<<k)
		v := indexfn.Vector(addr, hist, k)
		got := g.IndicesFor(addr, hist)
		if got[0] != addr&(1<<n-1) {
			t.Fatalf("enhanced bank0 index = %#x, want addr mod 2^n = %#x", got[0], addr&(1<<n-1))
		}
		if got[1] != s.F1(v) || got[2] != s.F2(v) {
			t.Fatalf("enhanced banks 1/2 indices wrong")
		}
	}
	if g.Name() != "egskew" {
		t.Errorf("Name = %q", g.Name())
	}
}

// findBank0Collision searches for two addresses (zero history) that
// collide in bank 0 but in no other bank.
func findBank0Collision(t *testing.T, g *GSkewed) (v, w uint64) {
	t.Helper()
	r := rng.NewXoshiro256(3)
	for tries := 0; tries < 200000; tries++ {
		a, b := r.Uint64n(1<<20), r.Uint64n(1<<20)
		if a == b {
			continue
		}
		ia := g.IndicesFor(a, 0)
		ib := g.IndicesFor(b, 0)
		if ia[0] == ib[0] && ia[1] != ib[1] && ia[2] != ib[2] {
			return a, b
		}
	}
	t.Fatal("no bank-0-only collision found")
	return 0, 0
}

func TestPartialUpdatePreservesDissenter(t *testing.T) {
	// V and W collide in bank 0 only. Train W strongly not-taken, then
	// stream taken outcomes for V. The overall V prediction is correct
	// (banks 1,2 say taken), so under partial update the dissenting
	// bank 0 — which belongs to W's substream — must NOT be trained,
	// preserving W's counter. Under total update it is destroyed.
	partial := MustGSkewed(Config{BankBits: 8, HistoryBits: 0, Policy: PartialUpdate})
	v, w := findBank0Collision(t, partial)

	train(partial, w, 0, false, 4) // W strongly not-taken everywhere
	train(partial, v, 0, true, 8)  // V taken; banks 1,2 learn; bank 0 dissents
	if got := partial.BankValue(0, w, 0); got != 0 {
		t.Errorf("partial update trained the dissenting bank: value %d, want 0", got)
	}
	if !partial.Predict(v, 0) {
		t.Error("partial: V not predicted taken")
	}
	if partial.Predict(w, 0) {
		t.Error("partial: W prediction destroyed")
	}

	total := MustGSkewed(Config{BankBits: 8, HistoryBits: 0, Policy: TotalUpdate})
	train(total, w, 0, false, 4)
	train(total, v, 0, true, 8)
	if got := total.BankValue(0, w, 0); got != 3 {
		t.Errorf("total update should saturate shared bank-0 entry: value %d, want 3", got)
	}
}

func TestGSkewedMajorityRobustToSingleBankAlias(t *testing.T) {
	// Even with bank 0 fully aliased by W's opposite-direction stream,
	// V's majority vote must still be correct — the core mechanism of
	// the skewed predictor.
	g := MustGSkewed(Config{BankBits: 8, HistoryBits: 0, Policy: TotalUpdate})
	v, w := findBank0Collision(t, g)
	for i := 0; i < 50; i++ {
		g.Update(v, 0, true)
		g.Update(w, 0, false) // keeps thrashing shared bank-0 entry
	}
	if !g.Predict(v, 0) {
		t.Error("majority vote failed to rescue aliased reference V")
	}
	if g.Predict(w, 0) {
		t.Error("majority vote failed to rescue aliased reference W")
	}
}

func TestGSkewedFiveBanks(t *testing.T) {
	g := MustGSkewed(Config{Banks: 5, BankBits: 8, HistoryBits: 4})
	if g.Banks() != 5 {
		t.Fatalf("Banks = %d", g.Banks())
	}
	train(g, 0xbeef, 0x9, false, 4)
	if g.Predict(0xbeef, 0x9) {
		t.Error("5-bank gskewed did not learn")
	}
	idx := g.IndicesFor(0xbeef, 0x9)
	if len(idx) != 5 {
		t.Fatalf("IndicesFor returned %d indices", len(idx))
	}
}

func TestGSkewedReset(t *testing.T) {
	g := MustGSkewed(Config{BankBits: 8, HistoryBits: 4})
	train(g, 0x42, 0x3, false, 6)
	g.Reset()
	if !g.Predict(0x42, 0x3) {
		t.Error("Reset did not restore default prediction")
	}
}

func TestUpdatePolicyString(t *testing.T) {
	if PartialUpdate.String() != "partial" || TotalUpdate.String() != "total" {
		t.Error("UpdatePolicy.String misbehaves")
	}
	if UpdatePolicy(9).String() != "policy(9)" {
		t.Error("unknown policy String misbehaves")
	}
}

func TestUnaliasedSeparatesAllSubstreams(t *testing.T) {
	u := NewUnaliased(12, 2)
	// Distinct (addr, hist) pairs must never interfere.
	train(u, 1, 0x001, true, 4)
	train(u, 1, 0x002, false, 4)
	train(u, 2, 0x001, false, 4)
	if !u.Predict(1, 0x001) || u.Predict(1, 0x002) || u.Predict(2, 0x001) {
		t.Error("unaliased predictor mixed substreams")
	}
	if u.Substreams() != 3 {
		t.Errorf("Substreams = %d, want 3", u.Substreams())
	}
	if u.Addresses() != 2 {
		t.Errorf("Addresses = %d, want 2", u.Addresses())
	}
	if got := u.SubstreamRatio(); got != 1.5 {
		t.Errorf("SubstreamRatio = %v, want 1.5", got)
	}
}

func TestUnaliasedSeen(t *testing.T) {
	u := NewUnaliased(4, 2)
	if u.Seen(9, 0x5) {
		t.Error("Seen before any update")
	}
	if !u.Predict(9, 0x5) {
		t.Error("unknown substream must fall back to taken")
	}
	u.Update(9, 0x5, false)
	if !u.Seen(9, 0x5) {
		t.Error("not Seen after update")
	}
	// First update starts from the weak state agreeing with the outcome.
	if u.Predict(9, 0x5) {
		t.Error("first not-taken outcome should yield a not-taken prediction")
	}
}

func TestUnaliasedHistoryMasking(t *testing.T) {
	// Histories identical in the low k bits are the same substream.
	u := NewUnaliased(4, 2)
	u.Update(5, 0xf3, true)
	if !u.Seen(5, 0x03) {
		t.Error("history not masked to k bits")
	}
	if u.Seen(5, 0x13&0xf|0x10) && u.Substreams() != 1 {
		t.Error("unexpected extra substream")
	}
}

func TestUnaliasedReset(t *testing.T) {
	u := NewUnaliased(4, 2)
	u.Update(1, 2, true)
	u.Reset()
	if u.Seen(1, 2) || u.Substreams() != 0 || u.SubstreamRatio() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestUnaliasedBoundsAliasedPredictors(t *testing.T) {
	// On a biased random stream the infinite table must do at least as
	// well as a tiny gshare table (sanity for the whole hierarchy).
	r := rng.NewXoshiro256(8)
	u := NewUnaliased(4, 2)
	gs := MustSpec(Spec{Family: "gshare", N: 4, Hist: 4, Ctr: 2}) // tiny: heavy aliasing
	muU, muG := 0, 0
	const n = 30000
	for i := 0; i < n; i++ {
		addr := r.Uint64n(256)
		hist := r.Uint64n(16)
		taken := rng.Mix64(addr*977+hist)%10 < 7 // deterministic per-substream 70/30 split
		realTaken := r.Bool(0.9) == taken        // add noise
		if u.Seen(addr, hist) && u.Predict(addr, hist) != realTaken {
			muU++
		}
		if gs.Predict(addr, hist) != realTaken {
			muG++
		}
		u.Update(addr, hist, realTaken)
		gs.Update(addr, hist, realTaken)
	}
	if muU > muG {
		t.Errorf("unaliased (%d) mispredicted more than 16-entry gshare (%d)", muU, muG)
	}
}

func TestAssocLRUBasics(t *testing.T) {
	a := NewAssocLRU(2, 4, 2)
	if a.Entries() != 2 {
		t.Fatalf("Entries = %d", a.Entries())
	}
	if !a.Predict(1, 0) {
		t.Error("miss must predict taken (static fallback)")
	}
	train(a, 1, 0, false, 4)
	if a.Predict(1, 0) {
		t.Error("did not learn not-taken")
	}
	// Fill beyond capacity: (1,0) becomes LRU and is evicted.
	train(a, 2, 0, false, 1)
	train(a, 3, 0, false, 1)
	if a.Seen(1, 0) {
		t.Error("LRU entry not evicted")
	}
	if !a.Predict(1, 0) {
		t.Error("evicted entry must fall back to static taken")
	}
}

func TestAssocLRUCapacityVsUnaliased(t *testing.T) {
	// With capacity >= working set, AssocLRU behaves exactly like the
	// unaliased table (after first use) on any reference stream.
	a := NewAssocLRU(64, 6, 2)
	u := NewUnaliased(6, 2)
	r := rng.NewXoshiro256(5)
	for i := 0; i < 20000; i++ {
		addr := r.Uint64n(8)
		hist := r.Uint64n(8) // working set <= 64
		taken := r.Bool(0.7)
		if u.Seen(addr, hist) {
			if a.Predict(addr, hist) != u.Predict(addr, hist) {
				t.Fatalf("step %d: assoc-lru diverged from unaliased", i)
			}
		}
		a.Update(addr, hist, taken)
		u.Update(addr, hist, taken)
	}
}

func TestAssocLRUStorageAndString(t *testing.T) {
	a := NewAssocLRU(4096, 4, 2)
	if a.StorageBits() != 8192 {
		t.Errorf("StorageBits = %d", a.StorageBits())
	}
	if got := a.String(); got != "4k-assoc-lru(h4,2bit)" {
		t.Errorf("String() = %q", got)
	}
	if a.Name() != "assoc-lru" || a.HistoryBits() != 4 {
		t.Error("metadata wrong")
	}
}

func TestAssocLRUReset(t *testing.T) {
	a := NewAssocLRU(8, 4, 2)
	train(a, 1, 1, false, 4)
	a.Reset()
	if a.Seen(1, 1) || a.Predict(1, 1) != true {
		t.Error("Reset incomplete")
	}
}

func TestOneBitCounters(t *testing.T) {
	// All organisations must support 1-bit automata (Table 2 compares
	// 1-bit vs 2-bit).
	preds := []Predictor{
		MustSpec(Spec{Family: "gshare", N: 8, Hist: 4, Ctr: 1}),
		MustGSkewed(Config{BankBits: 8, HistoryBits: 4, CounterBits: 1}),
		NewUnaliased(4, 1),
		NewAssocLRU(64, 4, 1),
	}
	for _, p := range preds {
		p.Update(3, 1, false)
		if p.Predict(3, 1) {
			t.Errorf("%s: 1-bit automaton did not flip after one outcome", p.Name())
		}
		p.Update(3, 1, true)
		if !p.Predict(3, 1) {
			t.Errorf("%s: 1-bit automaton did not flip back", p.Name())
		}
	}
}

func BenchmarkGShare(b *testing.B) {
	p := MustSpec(Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2})
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&(1<<12-1)]
		h := uint64(i)
		taken := p.Predict(a, h)
		p.Update(a, h, taken)
	}
}

func BenchmarkGSkewed3(b *testing.B) {
	p := MustGSkewed(Config{BankBits: 12, HistoryBits: 12})
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&(1<<12-1)]
		h := uint64(i)
		taken := p.Predict(a, h)
		p.Update(a, h, taken)
	}
}

func BenchmarkEnhancedGSkewed(b *testing.B) {
	p := MustGSkewed(Config{BankBits: 12, HistoryBits: 12, Enhanced: true})
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&(1<<12-1)]
		h := uint64(i)
		taken := p.Predict(a, h)
		p.Update(a, h, taken)
	}
}
