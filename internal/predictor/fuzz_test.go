package predictor

import (
	"strings"
	"testing"
)

// FuzzParseSpec checks the spec grammar's core contract on arbitrary
// input: ParseSpec never panics, and anything it accepts canonicalises
// to a fixed point — ParseSpec(s.String()) == s == s.Normalize(). The
// server keys its content-addressed result store on canonical spec
// strings (internal/store), so a spelling that parsed but failed to
// re-parse, or drifted under re-canonicalisation, would silently split
// or corrupt cache cells.
func FuzzParseSpec(f *testing.F) {
	// One canonical example per family, plus default-elided spellings
	// and representative malformed inputs.
	for _, seed := range []string{
		"bimodal:n=14,ctr=2",
		"gshare:n=14,k=12,ctr=2",
		"gselect:n=14,k=6,ctr=2",
		"gskewed:n=12,k=8,banks=3,ctr=2,policy=partial",
		"egskew:n=12,k=12,ctr=2,policy=total,shh=10",
		"2bcgskew:n=12,ks=7,k=14",
		"agree:n=12,k=10,bias=12,ctr=2",
		"bimode:n=12,k=10,choice=12,ctr=2",
		"pas:bht=10,local=8,n=12,ctr=2",
		"skewed-pas:bht=10,local=8,n=12,ctr=2,policy=partial",
		"unaliased:k=12,ctr=2",
		"assoc-lru:entries=1024,k=4,ctr=2",
		"gshare",
		"gshare: n = 8 , k = 6 ",
		"gshare:n=8,k=6,k=7",
		"bimodal:k=4",
		"gskewed:policy=sideways",
		"oracle:n=8",
		":n=8",
		"gshare:n=",
		"gshare:n=99999999999999999999",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return // rejected input only has to not panic
		}
		if s != s.Normalize() {
			t.Fatalf("ParseSpec(%q) = %+v is not normalized (want %+v)", text, s, s.Normalize())
		}
		canon := s.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not re-parse: %v", canon, text, err)
		}
		if again != s {
			t.Fatalf("canonical round trip drifted: %q parsed as %+v, its String %q re-parsed as %+v",
				text, s, canon, again)
		}
		if again.String() != canon {
			t.Fatalf("String not a fixed point: %q then %q", canon, again.String())
		}
		// Anything buildable must stay buildable (and agree on family)
		// after the round trip. Cap the geometry first: ParseSpec
		// accepts any uint32 for n/entries, and New allocates 2^n — the
		// fuzzer would otherwise explore multi-gigabyte predictors.
		if s.N > 16 || s.Entries > 1<<16 || s.BHT > 16 || s.Local > 16 || s.Choice > 16 || s.Bias > 16 {
			return
		}
		p, err := s.New()
		if err != nil {
			return // geometry errors are legal; they just must not panic
		}
		if !strings.HasPrefix(canon, s.Family+":") && canon != s.Family {
			t.Fatalf("canonical form %q does not carry family %q", canon, s.Family)
		}
		// Unaliased reports the storage of the substreams seen so far,
		// which is legitimately zero on a fresh instance; everything
		// else must report a positive fixed budget.
		if p.StorageBits() < 0 || (p.StorageBits() == 0 && s.Family != "unaliased") {
			t.Fatalf("spec %q built a predictor with %d storage bits", canon, p.StorageBits())
		}
	})
}
