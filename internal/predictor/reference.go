package predictor

import (
	"fmt"

	"gskew/internal/counter"
	"gskew/internal/indexfn"
	"gskew/internal/lru"
)

// Unaliased is the ideal infinite predictor table: every (address,
// history) substream gets a private counter. It bounds every finite
// organisation from below and provides the intrinsic (aliasing-free)
// misprediction rate of Table 2.
//
// Unaliased implements FirstUseTracker so the runner can exclude
// compulsory references from misprediction accounting, as the paper
// does.
type Unaliased struct {
	counters map[uint64]counter.Counter
	histBits uint
	ctrBits  uint
	addrs    map[uint64]struct{} // distinct branch addresses, for substream ratio
}

// NewUnaliased returns an infinite table of counterBits-wide automata
// keyed by (address, k-bit history).
func NewUnaliased(k, counterBits uint) *Unaliased {
	if counterBits == 0 {
		counterBits = 2
	}
	return &Unaliased{
		counters: make(map[uint64]counter.Counter),
		histBits: k,
		ctrBits:  counterBits,
		addrs:    make(map[uint64]struct{}),
	}
}

// Predict implements Predictor. Unknown substreams predict taken (the
// static fallback); the runner normally filters these out via Seen.
func (u *Unaliased) Predict(addr, hist uint64) bool {
	c, ok := u.counters[indexfn.Vector(addr, hist, u.histBits)]
	if !ok {
		return true
	}
	return c.Predict()
}

// Update implements Predictor.
func (u *Unaliased) Update(addr, hist uint64, taken bool) {
	v := indexfn.Vector(addr, hist, u.histBits)
	c, ok := u.counters[v]
	if !ok {
		u.addrs[addr] = struct{}{}
		// A fresh substream starts from the weak state agreeing with
		// its first outcome, the convention the paper's "do not count
		// the first occurrence" methodology implies.
		if taken {
			c = counter.WeaklyTaken(u.ctrBits)
		} else {
			c = counter.WeaklyNotTaken(u.ctrBits)
		}
	}
	u.counters[v] = c.Update(taken)
}

// Seen implements FirstUseTracker.
func (u *Unaliased) Seen(addr, hist uint64) bool {
	_, ok := u.counters[indexfn.Vector(addr, hist, u.histBits)]
	return ok
}

// Name implements Predictor.
func (u *Unaliased) Name() string { return "unaliased" }

// HistoryBits implements Predictor.
func (u *Unaliased) HistoryBits() uint { return u.histBits }

// StorageBits implements Predictor. For the infinite table this is the
// storage a real table would need for the substreams seen so far.
func (u *Unaliased) StorageBits() int { return len(u.counters) * int(u.ctrBits) }

// Reset implements Predictor.
func (u *Unaliased) Reset() {
	clear(u.counters)
	clear(u.addrs)
}

// Substreams returns the number of distinct (address, history) pairs
// observed.
func (u *Unaliased) Substreams() int { return len(u.counters) }

// Addresses returns the number of distinct branch addresses observed.
func (u *Unaliased) Addresses() int { return len(u.addrs) }

// SubstreamRatio returns substreams per address — Table 2's first
// column. Zero before any update.
func (u *Unaliased) SubstreamRatio() float64 {
	if len(u.addrs) == 0 {
		return 0
	}
	return float64(len(u.counters)) / float64(len(u.addrs))
}

// String describes the configuration.
func (u *Unaliased) String() string {
	return fmt.Sprintf("unaliased(h%d,%dbit)", u.histBits, u.ctrBits)
}

// AssocLRU is an N-entry fully-associative tagged predictor table with
// LRU replacement, the hardware-infeasible reference of Figure 8:
// conflict aliasing is eliminated entirely; only capacity (and
// compulsory) aliasing remains. Missing pairs fall back to a static
// always-taken prediction, as in the paper's experiment.
type AssocLRU struct {
	cache    *lru.Cache
	histBits uint
	ctrBits  uint
}

// NewAssocLRU returns an N-entry fully-associative LRU predictor keyed
// by (address, k-bit history) with counterBits-wide automata.
func NewAssocLRU(entries int, k, counterBits uint) *AssocLRU {
	if counterBits == 0 {
		counterBits = 2
	}
	return &AssocLRU{
		cache:    lru.NewCache(entries),
		histBits: k,
		ctrBits:  counterBits,
	}
}

// Predict implements Predictor. A miss predicts taken (static
// fallback). Prediction does not touch recency: only Update does,
// mirroring how the paper counts one reference per dynamic branch.
func (a *AssocLRU) Predict(addr, hist uint64) bool {
	raw, ok := a.cache.Peek(indexfn.Vector(addr, hist, a.histBits))
	if !ok {
		return true
	}
	return counter.New(a.ctrBits, raw).Predict()
}

// Update implements Predictor. It inserts missing pairs (possibly
// evicting the LRU pair) and trains the counter.
func (a *AssocLRU) Update(addr, hist uint64, taken bool) {
	v := indexfn.Vector(addr, hist, a.histBits)
	raw, ok := a.cache.Get(v) // refreshes recency on hit
	var c counter.Counter
	if ok {
		c = counter.New(a.ctrBits, raw)
	} else if taken {
		c = counter.WeaklyTaken(a.ctrBits)
	} else {
		c = counter.WeaklyNotTaken(a.ctrBits)
	}
	a.cache.Put(v, c.Update(taken).Value())
}

// Seen implements FirstUseTracker relative to current residency: a
// pair evicted and re-fetched counts as unseen again, which is exactly
// the capacity-aliasing semantics of the tagged-table experiments.
func (a *AssocLRU) Seen(addr, hist uint64) bool {
	_, ok := a.cache.Peek(indexfn.Vector(addr, hist, a.histBits))
	return ok
}

// Name implements Predictor.
func (a *AssocLRU) Name() string { return "assoc-lru" }

// HistoryBits implements Predictor.
func (a *AssocLRU) HistoryBits() uint { return a.histBits }

// StorageBits implements Predictor: counter bits only, matching how
// the paper compares it against tag-less tables (the tags are the
// point of the comparison and are costed separately in section 3.3).
func (a *AssocLRU) StorageBits() int { return a.cache.Capacity() * int(a.ctrBits) }

// Reset implements Predictor.
func (a *AssocLRU) Reset() { a.cache.Reset() }

// Entries returns the table capacity.
func (a *AssocLRU) Entries() int { return a.cache.Capacity() }

// String describes the configuration.
func (a *AssocLRU) String() string {
	return fmt.Sprintf("%s-assoc-lru(h%d,%dbit)", fmtEntries(a.cache.Capacity()), a.histBits, a.ctrBits)
}
