package predictor

import (
	"fmt"

	"gskew/internal/counter"
	"gskew/internal/indexfn"
	"gskew/internal/lru"
)

// Unaliased is the ideal infinite predictor table: every (address,
// history) substream gets a private counter. It bounds every finite
// organisation from below and provides the intrinsic (aliasing-free)
// misprediction rate of Table 2.
//
// Unaliased implements FirstUseTracker so the runner can exclude
// compulsory references from misprediction accounting, as the paper
// does.
type Unaliased struct {
	counters map[uint64]counter.Counter
	histBits uint
	ctrBits  uint
	addrs    map[uint64]struct{} // distinct branch addresses, for substream ratio

	// Memoised lookup for the Seen/Predict/Update sequence the runner
	// issues per branch: one map probe serves all three. Invalidated
	// whenever the map changes.
	lastVec  uint64
	lastCtr  counter.Counter
	lastSeen bool
	lookOK   bool
}

// NewUnaliased returns an infinite table of counterBits-wide automata
// keyed by (address, k-bit history).
func NewUnaliased(k, counterBits uint) *Unaliased {
	if counterBits == 0 {
		counterBits = 2
	}
	return &Unaliased{
		counters: make(map[uint64]counter.Counter),
		histBits: k,
		ctrBits:  counterBits,
		addrs:    make(map[uint64]struct{}),
	}
}

// lookup probes the substream map, reusing the memoised probe when the
// reference repeats (the Seen/Predict/Update pattern of the runner).
func (u *Unaliased) lookup(addr, hist uint64) (uint64, counter.Counter, bool) {
	v := indexfn.Vector(addr, hist, u.histBits)
	if u.lookOK && u.lastVec == v {
		return v, u.lastCtr, u.lastSeen
	}
	c, ok := u.counters[v]
	u.lastVec, u.lastCtr, u.lastSeen, u.lookOK = v, c, ok, true
	return v, c, ok
}

// Predict implements Predictor. Unknown substreams predict taken (the
// static fallback); the runner normally filters these out via Seen.
func (u *Unaliased) Predict(addr, hist uint64) bool {
	_, c, ok := u.lookup(addr, hist)
	if !ok {
		return true
	}
	return c.Predict()
}

// Update implements Predictor.
func (u *Unaliased) Update(addr, hist uint64, taken bool) {
	v, c, ok := u.lookup(addr, hist)
	if !ok {
		u.addrs[addr] = struct{}{}
		// A fresh substream starts from the weak state agreeing with
		// its first outcome, the convention the paper's "do not count
		// the first occurrence" methodology implies.
		if taken {
			c = counter.WeaklyTaken(u.ctrBits)
		} else {
			c = counter.WeaklyNotTaken(u.ctrBits)
		}
	}
	u.counters[v] = c.Update(taken)
	u.lookOK = false // map changed
}

// Seen implements FirstUseTracker.
func (u *Unaliased) Seen(addr, hist uint64) bool {
	_, _, ok := u.lookup(addr, hist)
	return ok
}

// Step implements Stepper: one map probe (often pre-warmed by Seen)
// serves prediction and training.
func (u *Unaliased) Step(addr, hist uint64, taken bool) bool {
	v, c, ok := u.lookup(addr, hist)
	pred := true
	if ok {
		pred = c.Predict()
	} else {
		u.addrs[addr] = struct{}{}
		if taken {
			c = counter.WeaklyTaken(u.ctrBits)
		} else {
			c = counter.WeaklyNotTaken(u.ctrBits)
		}
	}
	u.counters[v] = c.Update(taken)
	u.lookOK = false // map changed
	return pred
}

// Name implements Predictor.
func (u *Unaliased) Name() string { return "unaliased" }

// HistoryBits implements Predictor.
func (u *Unaliased) HistoryBits() uint { return u.histBits }

// StorageBits implements Predictor. For the infinite table this is the
// storage a real table would need for the substreams seen so far.
func (u *Unaliased) StorageBits() int { return len(u.counters) * int(u.ctrBits) }

// Reset implements Predictor.
func (u *Unaliased) Reset() {
	clear(u.counters)
	clear(u.addrs)
	u.lookOK = false
}

// Substreams returns the number of distinct (address, history) pairs
// observed.
func (u *Unaliased) Substreams() int { return len(u.counters) }

// Addresses returns the number of distinct branch addresses observed.
func (u *Unaliased) Addresses() int { return len(u.addrs) }

// SubstreamRatio returns substreams per address — Table 2's first
// column. Zero before any update.
func (u *Unaliased) SubstreamRatio() float64 {
	if len(u.addrs) == 0 {
		return 0
	}
	return float64(len(u.counters)) / float64(len(u.addrs))
}

// String describes the configuration.
func (u *Unaliased) String() string {
	return fmt.Sprintf("unaliased(h%d,%dbit)", u.histBits, u.ctrBits)
}

// AssocLRU is an N-entry fully-associative tagged predictor table with
// LRU replacement, the hardware-infeasible reference of Figure 8:
// conflict aliasing is eliminated entirely; only capacity (and
// compulsory) aliasing remains. Missing pairs fall back to a static
// always-taken prediction, as in the paper's experiment.
type AssocLRU struct {
	cache    *lru.Cache
	histBits uint
	ctrBits  uint
}

// NewAssocLRU returns an N-entry fully-associative LRU predictor keyed
// by (address, k-bit history) with counterBits-wide automata.
func NewAssocLRU(entries int, k, counterBits uint) *AssocLRU {
	if counterBits == 0 {
		counterBits = 2
	}
	return &AssocLRU{
		cache:    lru.NewCache(entries),
		histBits: k,
		ctrBits:  counterBits,
	}
}

// Predict implements Predictor. A miss predicts taken (static
// fallback). Prediction does not touch recency: only Update does,
// mirroring how the paper counts one reference per dynamic branch.
func (a *AssocLRU) Predict(addr, hist uint64) bool {
	raw, ok := a.cache.Peek(indexfn.Vector(addr, hist, a.histBits))
	if !ok {
		return true
	}
	return counter.New(a.ctrBits, raw).Predict()
}

// Update implements Predictor. It inserts missing pairs (possibly
// evicting the LRU pair) and trains the counter.
func (a *AssocLRU) Update(addr, hist uint64, taken bool) {
	v := indexfn.Vector(addr, hist, a.histBits)
	raw, ok := a.cache.Get(v) // refreshes recency on hit
	var c counter.Counter
	if ok {
		c = counter.New(a.ctrBits, raw)
	} else if taken {
		c = counter.WeaklyTaken(a.ctrBits)
	} else {
		c = counter.WeaklyNotTaken(a.ctrBits)
	}
	a.cache.Put(v, c.Update(taken).Value())
}

// Step implements Stepper: one recency operation (Fetch+Store) replaces
// the Peek/Get/Put triple of separate Predict and Update calls. The
// recency outcome is identical — Predict never touches recency, and
// Update's net effect is one touch-or-insert — so the eviction sequence
// matches the two-call path exactly.
func (a *AssocLRU) Step(addr, hist uint64, taken bool) bool {
	v := indexfn.Vector(addr, hist, a.histBits)
	raw, hit := a.cache.Fetch(v)
	pred := true
	var c counter.Counter
	if hit {
		c = counter.New(a.ctrBits, raw)
		pred = c.Predict()
	} else if taken {
		c = counter.WeaklyTaken(a.ctrBits)
	} else {
		c = counter.WeaklyNotTaken(a.ctrBits)
	}
	a.cache.Store(v, c.Update(taken).Value())
	return pred
}

// Seen implements FirstUseTracker relative to current residency: a
// pair evicted and re-fetched counts as unseen again, which is exactly
// the capacity-aliasing semantics of the tagged-table experiments.
func (a *AssocLRU) Seen(addr, hist uint64) bool {
	_, ok := a.cache.Peek(indexfn.Vector(addr, hist, a.histBits))
	return ok
}

// Name implements Predictor.
func (a *AssocLRU) Name() string { return "assoc-lru" }

// HistoryBits implements Predictor.
func (a *AssocLRU) HistoryBits() uint { return a.histBits }

// StorageBits implements Predictor: counter bits only, matching how
// the paper compares it against tag-less tables (the tags are the
// point of the comparison and are costed separately in section 3.3).
func (a *AssocLRU) StorageBits() int { return a.cache.Capacity() * int(a.ctrBits) }

// Reset implements Predictor.
func (a *AssocLRU) Reset() { a.cache.Reset() }

// Entries returns the table capacity.
func (a *AssocLRU) Entries() int { return a.cache.Capacity() }

// String describes the configuration.
func (a *AssocLRU) String() string {
	return fmt.Sprintf("%s-assoc-lru(h%d,%dbit)", fmtEntries(a.cache.Capacity()), a.histBits, a.ctrBits)
}
