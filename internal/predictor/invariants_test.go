package predictor

// Cross-organisation invariant tests: properties every Predictor in
// the repository must satisfy, checked uniformly.

import (
	"testing"

	"gskew/internal/rng"
)

// allPredictors builds one representative of every organisation.
func allPredictors() map[string]func() Predictor {
	return map[string]func() Predictor{
		"bimodal":  func() Predictor { return MustSpec(Spec{Family: "bimodal", N: 8, Ctr: 2}) },
		"gshare":   func() Predictor { return MustSpec(Spec{Family: "gshare", N: 8, Hist: 6, Ctr: 2}) },
		"gselect":  func() Predictor { return MustSpec(Spec{Family: "gselect", N: 8, Hist: 6, Ctr: 2}) },
		"gskewed":  func() Predictor { return MustGSkewed(Config{BankBits: 8, HistoryBits: 6}) },
		"gskewed5": func() Predictor { return MustGSkewed(Config{Banks: 5, BankBits: 8, HistoryBits: 6}) },
		"gskewed-sh": func() Predictor {
			return MustGSkewed(Config{BankBits: 8, HistoryBits: 6, CounterBits: 2, SharedHysteresis: 1})
		},
		"egskew":     func() Predictor { return MustGSkewed(Config{BankBits: 8, HistoryBits: 6, Enhanced: true}) },
		"gskewed-tu": func() Predictor { return MustGSkewed(Config{BankBits: 8, HistoryBits: 6, Policy: TotalUpdate}) },
		"unaliased":  func() Predictor { return NewUnaliased(6, 2) },
		"assoc-lru":  func() Predictor { return NewAssocLRU(128, 6, 2) },
		"pas":        func() Predictor { return MustSpec(Spec{Family: "pas", BHT: 6, Local: 4, N: 10, Ctr: 2}) },
		"skewed-pas": func() Predictor {
			return MustSpec(Spec{Family: "skewed-pas", BHT: 6, Local: 4, N: 8, Ctr: 2, Policy: PartialUpdate})
		},
		"hybrid": func() Predictor {
			return MustHybrid(MustSpec(Spec{Family: "bimodal", N: 8, Ctr: 2}), MustSpec(Spec{Family: "gshare", N: 8, Hist: 6, Ctr: 2}), 8)
		},
		"agree":  func() Predictor { return MustSpec(Spec{Family: "agree", N: 8, Hist: 6, Bias: 8, Ctr: 2}) },
		"bimode": func() Predictor { return MustSpec(Spec{Family: "bimode", N: 8, Hist: 6, Choice: 8, Ctr: 2}) },
		"tage": func() Predictor {
			return MustSpec(Spec{Family: "tage", N: 6, Hist: 12, HistMin: 2, Tables: 4, Tag: 6, Ctr: 3})
		},
		"perceptron": func() Predictor {
			return MustSpec(Spec{Family: "perceptron", N: 6, Hist: 10, Tables: 4, Theta: 0, Ctr: 8})
		},
	}
}

type event struct {
	addr, hist uint64
	taken      bool
}

func randomEvents(seed uint64, n int) []event {
	r := rng.NewXoshiro256(seed)
	evs := make([]event, n)
	hist := uint64(0)
	for i := range evs {
		taken := r.Bool(0.6)
		evs[i] = event{addr: r.Uint64n(1 << 12), hist: hist, taken: taken}
		hist = hist<<1 | map[bool]uint64{true: 1}[taken]
	}
	return evs
}

// TestPredictIsPure verifies Predict never mutates state: predicting
// twice in a row gives the same answer, and a prediction-heavy
// interleaving does not change the final state reached by updates.
func TestPredictIsPure(t *testing.T) {
	evs := randomEvents(1, 4000)
	for name, build := range allPredictors() {
		t.Run(name, func(t *testing.T) {
			a, b := build(), build()
			for _, e := range evs {
				p1 := a.Predict(e.addr, e.hist)
				for i := 0; i < 3; i++ {
					if a.Predict(e.addr, e.hist) != p1 {
						t.Fatal("repeated Predict changed its answer")
					}
				}
				a.Update(e.addr, e.hist, e.taken)
				// b updates without the extra predictions.
				b.Update(e.addr, e.hist, e.taken)
			}
			for _, e := range evs[:200] {
				if a.Predict(e.addr, e.hist) != b.Predict(e.addr, e.hist) {
					t.Fatal("extra Predict calls perturbed predictor state")
				}
			}
		})
	}
}

// TestDeterminism verifies two instances fed the same stream are
// indistinguishable.
func TestDeterminism(t *testing.T) {
	evs := randomEvents(2, 4000)
	for name, build := range allPredictors() {
		t.Run(name, func(t *testing.T) {
			a, b := build(), build()
			for _, e := range evs {
				if a.Predict(e.addr, e.hist) != b.Predict(e.addr, e.hist) {
					t.Fatal("instances diverged")
				}
				a.Update(e.addr, e.hist, e.taken)
				b.Update(e.addr, e.hist, e.taken)
			}
		})
	}
}

// TestResetEquivalentToFresh verifies Reset restores the exact initial
// behaviour.
func TestResetEquivalentToFresh(t *testing.T) {
	train := randomEvents(3, 3000)
	probe := randomEvents(4, 3000)
	for name, build := range allPredictors() {
		t.Run(name, func(t *testing.T) {
			used := build()
			for _, e := range train {
				used.Update(e.addr, e.hist, e.taken)
			}
			used.Reset()
			fresh := build()
			for _, e := range probe {
				if used.Predict(e.addr, e.hist) != fresh.Predict(e.addr, e.hist) {
					t.Fatal("Reset predictor diverged from fresh instance")
				}
				used.Update(e.addr, e.hist, e.taken)
				fresh.Update(e.addr, e.hist, e.taken)
			}
		})
	}
}

// TestStorageBitsPositive sanity-checks the cost metric.
func TestStorageBitsPositive(t *testing.T) {
	for name, build := range allPredictors() {
		p := build()
		if name == "unaliased" {
			continue // grows with content; starts at 0
		}
		if p.StorageBits() <= 0 {
			t.Errorf("%s: StorageBits = %d", name, p.StorageBits())
		}
	}
}

// TestLearnsSimpleBias: every organisation must learn a stable branch
// within a handful of outcomes.
func TestLearnsSimpleBias(t *testing.T) {
	for name, build := range allPredictors() {
		t.Run(name, func(t *testing.T) {
			p := build()
			for i := 0; i < 16; i++ {
				p.Update(0x3c, 0x15, false)
			}
			if p.Predict(0x3c, 0x15) {
				t.Error("did not learn an always-not-taken branch")
			}
		})
	}
}
