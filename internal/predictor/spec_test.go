package predictor

import (
	"reflect"
	"testing"
)

// specSamples lists at least one representative spec per family in
// Families(), plus variants exercising every optional key.
var specSamples = []Spec{
	{Family: "bimodal", N: 14},
	{Family: "bimodal", N: 10, Ctr: 3},
	{Family: "gshare", N: 14, Hist: 12},
	{Family: "gshare", N: 12, Hist: 12, Ctr: 1},
	{Family: "gselect", N: 14, Hist: 6},
	{Family: "gskewed", N: 12, Hist: 8},
	{Family: "gskewed", N: 12, Hist: 8, Policy: TotalUpdate},
	{Family: "gskewed", N: 11, Hist: 11, Banks: 5, Policy: PartialUpdate},
	{Family: "gskewed", N: 12, Hist: 12, SharedHyst: 2},
	{Family: "egskew", N: 12, Hist: 12, Policy: PartialUpdate},
	{Family: "egskew", N: 11, Hist: 11, SharedHyst: 1},
	{Family: "2bcgskew", N: 12, HistShort: 7, Hist: 14},
	{Family: "agree", N: 14, Hist: 8, Bias: 10},
	{Family: "bimode", N: 13, Hist: 8, Choice: 11},
	{Family: "pas", BHT: 10, Local: 8, N: 12},
	{Family: "skewed-pas", BHT: 10, Local: 8, N: 11, Policy: PartialUpdate},
	{Family: "unaliased", Hist: 12},
	{Family: "assoc-lru", Entries: 1000, Hist: 4},
	{Family: "tage", N: 9, Hist: 20},
	{Family: "tage", N: 8, Hist: 24, HistMin: 2, Tables: 6, Tag: 10, Ctr: 2},
	{Family: "perceptron", N: 9, Hist: 16},
	{Family: "perceptron", N: 8, Hist: 24, Tables: 12, Theta: 31, Ctr: 6},
}

// TestSpecStringRoundTrip is the satellite property: for every family,
// ParseSpec(s.String()) reproduces s.Normalize() exactly.
func TestSpecStringRoundTrip(t *testing.T) {
	covered := make(map[string]bool)
	for _, s := range specSamples {
		covered[s.Family] = true
		text := s.String()
		got, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		// String renders defaults explicitly, so the parse result is
		// already normalized; compare against the normalized source.
		if want := s.Normalize(); got != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", text, got, want)
		}
	}
	for _, fam := range Families() {
		if !covered[fam] {
			t.Errorf("no round-trip sample for family %q", fam)
		}
	}
}

// TestSpecNormalizeIdempotent checks Normalize is a fixed point: a
// normalized spec normalizes (and round-trips) to itself.
func TestSpecNormalizeIdempotent(t *testing.T) {
	for _, s := range specSamples {
		once := s.Normalize()
		if twice := once.Normalize(); twice != once {
			t.Errorf("Normalize not idempotent for %+v: %+v then %+v", s, once, twice)
		}
		back, err := ParseSpec(once.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", once.String(), err)
		}
		if back != once {
			t.Errorf("normalized spec %+v reparses to %+v", once, back)
		}
	}
}

// TestSpecNewReportsSameSpec checks that every predictor built from a
// spec reports that spec back through the Speccer interface.
func TestSpecNewReportsSameSpec(t *testing.T) {
	for _, s := range specSamples {
		p, err := s.New()
		if err != nil {
			t.Fatalf("Spec%+v.New(): %v", s, err)
		}
		sp, ok := p.(Speccer)
		if !ok {
			t.Fatalf("%T does not implement Speccer", p)
		}
		if got, want := sp.Spec(), s.Normalize(); got != want {
			t.Errorf("%T.Spec() = %+v, want %+v", p, got, want)
		}
	}
}

// TestSpecParseStringFixedForms pins the documented canonical strings.
func TestSpecParseStringFixedForms(t *testing.T) {
	cases := []struct {
		spec Spec
		text string
	}{
		{Spec{Family: "bimodal", N: 14}, "bimodal:n=14,ctr=2"},
		{Spec{Family: "gshare", N: 14, Hist: 12}, "gshare:n=14,k=12,ctr=2"},
		{Spec{Family: "gselect", N: 14, Hist: 6}, "gselect:n=14,k=6,ctr=2"},
		{Spec{Family: "gskewed", N: 12, Hist: 8},
			"gskewed:n=12,k=8,banks=3,ctr=2,policy=partial"},
		{Spec{Family: "gskewed", N: 12, Hist: 12, SharedHyst: 2, Policy: TotalUpdate},
			"gskewed:n=12,k=12,banks=3,ctr=2,policy=total,shh=2"},
		{Spec{Family: "egskew", N: 12, Hist: 12},
			"egskew:n=12,k=12,ctr=2,policy=partial"},
		{Spec{Family: "2bcgskew", N: 12, HistShort: 7, Hist: 14},
			"2bcgskew:n=12,ks=7,k=14"},
		{Spec{Family: "agree", N: 14, Hist: 8, Bias: 10},
			"agree:n=14,k=8,bias=10,ctr=2"},
		{Spec{Family: "bimode", N: 13, Hist: 8, Choice: 11},
			"bimode:n=13,k=8,choice=11,ctr=2"},
		{Spec{Family: "pas", BHT: 10, Local: 8, N: 12},
			"pas:bht=10,local=8,n=12,ctr=2"},
		{Spec{Family: "skewed-pas", BHT: 10, Local: 8, N: 11},
			"skewed-pas:bht=10,local=8,n=11,ctr=2,policy=partial"},
		{Spec{Family: "unaliased", Hist: 12}, "unaliased:k=12,ctr=2"},
		{Spec{Family: "assoc-lru", Entries: 1024, Hist: 4},
			"assoc-lru:entries=1024,k=4,ctr=2"},
		{Spec{Family: "tage", N: 9, Hist: 20},
			"tage:n=9,k=20,kmin=4,tables=4,tag=8,ctr=3"},
		{Spec{Family: "tage", N: 8, Hist: 24, HistMin: 2, Tables: 6, Tag: 10, Ctr: 2},
			"tage:n=8,k=24,kmin=2,tables=6,tag=10,ctr=2"},
		{Spec{Family: "perceptron", N: 9, Hist: 16},
			"perceptron:n=9,k=16,tables=8,theta=44,ctr=8"},
		{Spec{Family: "perceptron", N: 8, Hist: 24, Tables: 12, Theta: 31, Ctr: 6},
			"perceptron:n=8,k=24,tables=12,theta=31,ctr=6"},
	}
	for _, c := range cases {
		if got := c.spec.String(); got != c.text {
			t.Errorf("Spec%+v.String() = %q, want %q", c.spec, got, c.text)
		}
		s, err := ParseSpec(c.text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.text, err)
		}
		if want := c.spec.Normalize(); s != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.text, s, want)
		}
	}
}

// TestSpecParseErrors checks the grammar rejects what it should.
func TestSpecParseErrors(t *testing.T) {
	bad := []string{
		"",                           // empty
		"neural:n=12",                // unknown family
		"gshare:n=14,k=12,banks=3",   // key not in family's grammar
		"gshare:n=14,n=15",           // duplicate key
		"gshare:n",                   // malformed pair
		"gshare:n=",                  // empty value
		"gshare:n=abc",               // non-numeric
		"gskewed:n=12,policy=maybe",  // bad policy value
		"gshare:n=-3",                // negative
		"gshare:n=99999999999999999", // overflow
	}
	for _, text := range bad {
		if _, err := ParseSpec(text); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", text)
		}
	}
}

// TestSpecNewErrors checks construction errors surface as errors, not
// panics, for out-of-range configurations reachable from strings.
func TestSpecNewErrors(t *testing.T) {
	bad := []Spec{
		{Family: ""},
		{Family: "nope", N: 12},
		{Family: "gshare"},                                     // n = 0
		{Family: "gshare", N: 31},                              // n too wide
		{Family: "gshare", N: 14, Hist: 31},                    // k too long
		{Family: "gshare", N: 14, Ctr: 9},                      // counter too wide
		{Family: "gskewed", N: 1, Hist: 4},                     // below skewfn.MinBits
		{Family: "gskewed", N: 12, Banks: 2},                   // even bank count
		{Family: "2bcgskew", N: 1, Hist: 14},                   // below skewfn.MinBits
		{Family: "agree", N: 14, Hist: 8},                      // bias = 0
		{Family: "agree", N: 0, Hist: 8, Bias: 10},             // n = 0
		{Family: "bimode", N: 13, Hist: 8},                     // choice = 0
		{Family: "pas", BHT: 0, Local: 8, N: 12},               // bht = 0
		{Family: "pas", BHT: 10, Local: 13, N: 12},             // local > pht index
		{Family: "skewed-pas", BHT: 10, Local: 8},              // bank bits = 0
		{Family: "assoc-lru", Entries: 0, Hist: 4},             // no capacity
		{Family: "unaliased", Hist: 40},                        // history too long
		{Family: "tage"},                                       // n = 0
		{Family: "tage", N: 30, Hist: 20},                      // index too wide
		{Family: "tage", N: 9, Hist: 31},                       // history too long
		{Family: "tage", N: 9, Hist: 20, Tables: 9},            // too many components
		{Family: "tage", N: 9, Hist: 20, Tag: 1},               // tag too narrow
		{Family: "tage", N: 9, Hist: 20, Tag: 17},              // tag too wide
		{Family: "tage", N: 9, Hist: 20, HistMin: 31},          // kmin too long
		{Family: "tage", N: 9, Hist: 20, Ctr: 9},               // counter too wide
		{Family: "perceptron"},                                 // n = 0
		{Family: "perceptron", N: 30, Hist: 16},                // index too wide
		{Family: "perceptron", N: 9, Hist: 31},                 // history too long
		{Family: "perceptron", N: 9, Hist: 16, Tables: 1},      // bias table alone
		{Family: "perceptron", N: 9, Hist: 16, Tables: 17},     // too many tables
		{Family: "perceptron", N: 9, Hist: 16, Ctr: 9},         // weights too wide
		{Family: "perceptron", N: 9, Hist: 16, Theta: 1 << 21}, // theta out of range
	}
	for _, s := range bad {
		p, err := s.New()
		if err == nil {
			t.Errorf("Spec%+v.New() built %v, want error", s, p)
		}
	}
}

// TestDeprecatedConstructorsMatchSpec checks the legacy positional
// constructors build the same configuration as their Spec equivalent.
func TestDeprecatedConstructorsMatchSpec(t *testing.T) {
	cases := []struct {
		name string
		old  Predictor
		spec Spec
	}{
		{"gshare", MustSpec(Spec{Family: "gshare", N: 14, Hist: 12}),
			Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2}},
		{"bimodal", MustSpec(Spec{Family: "bimodal", N: 12, Ctr: 2}), Spec{Family: "bimodal", N: 12}},
		{"gselect", MustSpec(Spec{Family: "gselect", N: 14, Hist: 6, Ctr: 2}), Spec{Family: "gselect", N: 14, Hist: 6}},
		{"2bcgskew", MustSpec(Spec{Family: "2bcgskew", N: 12, HistShort: 7, Hist: 14}),
			Spec{Family: "2bcgskew", N: 12, HistShort: 7, Hist: 14}},
		{"agree", MustSpec(Spec{Family: "agree", N: 14, Hist: 8, Bias: 10, Ctr: 2}),
			Spec{Family: "agree", N: 14, Hist: 8, Bias: 10}},
		{"bimode", MustSpec(Spec{Family: "bimode", N: 13, Hist: 8, Choice: 11, Ctr: 2}),
			Spec{Family: "bimode", N: 13, Hist: 8, Choice: 11}},
		{"pas", MustSpec(Spec{Family: "pas", BHT: 10, Local: 8, N: 12, Ctr: 2}),
			Spec{Family: "pas", BHT: 10, Local: 8, N: 12}},
		{"skewed-pas", MustSpec(Spec{Family: "skewed-pas", BHT: 10, Local: 8, N: 11, Ctr: 2, Policy: PartialUpdate}),
			Spec{Family: "skewed-pas", BHT: 10, Local: 8, N: 11}},
		{"tage", MustSpec(Spec{Family: "tage", N: 9, Hist: 20, HistMin: 4, Tables: 4, Tag: 8, Ctr: 3}),
			Spec{Family: "tage", N: 9, Hist: 20}},
		{"perceptron", MustSpec(Spec{Family: "perceptron", N: 9, Hist: 16, Tables: 8, Theta: 0, Ctr: 8}),
			Spec{Family: "perceptron", N: 9, Hist: 16}},
	}
	for _, c := range cases {
		fresh := MustSpec(c.spec)
		if got, want := c.old.(Speccer).Spec(), fresh.(Speccer).Spec(); got != want {
			t.Errorf("%s: legacy constructor Spec() = %+v, Spec path = %+v", c.name, got, want)
		}
		if reflect.TypeOf(c.old) != reflect.TypeOf(fresh) {
			t.Errorf("%s: legacy constructor type %T, Spec path %T", c.name, c.old, fresh)
		}
		if got, want := c.old.StorageBits(), fresh.StorageBits(); got != want {
			t.Errorf("%s: legacy StorageBits %d, Spec path %d", c.name, got, want)
		}
	}
}

// TestMustParseSpecBehaves smoke-tests the convenience constructor end
// to end: the built predictor must predict and report the parsed spec.
func TestMustParseSpecBehaves(t *testing.T) {
	p := MustParseSpec("gskewed:n=10,k=8,banks=3,ctr=2,policy=partial")
	g, ok := p.(*GSkewed)
	if !ok {
		t.Fatalf("MustParseSpec built %T, want *GSkewed", p)
	}
	if got := g.Spec().String(); got != "gskewed:n=10,k=8,banks=3,ctr=2,policy=partial" {
		t.Errorf("round-trip string = %q", got)
	}
	// Exercise it: train one branch pattern and expect it learned.
	for i := 0; i < 32; i++ {
		g.Update(0x40, 0, true)
	}
	if !g.Predict(0x40, 0) {
		t.Errorf("trained predictor did not learn an always-taken branch")
	}
}
