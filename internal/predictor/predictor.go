// Package predictor implements the conditional branch predictors
// studied in the paper: the single-table global-history baselines
// (bimodal, gshare, gselect), the skewed branch predictor (gskewed)
// and its enhanced variant — the paper's contribution — plus the two
// reference organisations used to bound them: an ideal unaliased
// (infinite) table and a fully-associative tagged LRU table.
//
// All predictors share one interface. The simulation runner owns the
// global-history register and passes the raw history value; each
// predictor masks it to its own configured length, so the same branch
// stream drives every organisation identically.
package predictor

// Predictor is a dynamic conditional-branch predictor.
//
// Predict must not change predictor state; Update trains the predictor
// with the resolved outcome of the same (addr, hist) reference.
// addr is a word-aligned branch address (byte PC >> 2); hist is the
// global-history register value with the newest outcome in bit 0.
type Predictor interface {
	Predict(addr, hist uint64) bool
	Update(addr, hist uint64, taken bool)

	// Name identifies the organisation, e.g. "gshare" or "gskewed".
	Name() string
	// HistoryBits returns the history length the predictor consumes.
	HistoryBits() uint
	// StorageBits returns the total predictor storage in bits, the
	// paper's cost metric for comparing organisations.
	StorageBits() int
	// Reset returns the predictor to its initial state.
	Reset()
}

// Stepper is an optional fast path: Step is exactly
// Predict-then-Update fused into one call, returning the prediction.
// It must leave the predictor in the same state as the two separate
// calls; the simulation runners use it to avoid duplicate index
// computation and per-event interface dispatch on the hot loop.
type Stepper interface {
	Step(addr, hist uint64, taken bool) bool
}

// MemoInvalidator is implemented by predictors that memoise read state
// across the Predict/Update pair. The compiled kernel layer trains a
// predictor's tables without going through its methods, so the
// simulation runner invalidates the memo after a kernel-driven run;
// predictors whose caches are pure functions of the reference key need
// not implement it.
type MemoInvalidator interface {
	InvalidateMemo()
}

// FirstUseTracker is implemented by predictors that can report whether
// an (address, history) pair has been seen before. The simulation
// runner uses it to exclude compulsory references from misprediction
// accounting, matching the paper's Table 2 methodology.
type FirstUseTracker interface {
	// Seen reports whether the (addr, hist) substream has been
	// encountered before (without modifying state).
	Seen(addr, hist uint64) bool
}
