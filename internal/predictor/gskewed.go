package predictor

import (
	"fmt"

	"gskew/internal/counter"
	"gskew/internal/indexfn"
	"gskew/internal/skewfn"
)

// UpdatePolicy selects how a skewed predictor trains its banks
// (section 4.1 of the paper).
type UpdatePolicy uint8

const (
	// PartialUpdate: when the overall prediction is correct, banks
	// that voted against it are NOT updated — their entry is presumed
	// to belong to a different substream, which effectively enlarges
	// the predictor's capacity. When the overall prediction is wrong,
	// all banks are trained. This is the paper's recommended policy.
	PartialUpdate UpdatePolicy = iota
	// TotalUpdate trains every bank on every branch, as if each were a
	// standalone predictor.
	TotalUpdate
)

// String returns "partial" or "total".
func (p UpdatePolicy) String() string {
	switch p {
	case PartialUpdate:
		return "partial"
	case TotalUpdate:
		return "total"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// GSkewed is the skewed branch predictor: an odd number of identical
// tag-less banks indexed by distinct skewing functions of the
// information vector V = (address, history), with a majority vote
// across banks deciding the prediction.
type GSkewed struct {
	banks    []counter.Bank
	tabs     []*counter.Table // non-nil when every bank is a plain Table: devirtualised hot path
	skew     *skewfn.Skewer
	policy   UpdatePolicy
	histBits uint
	enhanced bool
	name     string

	idx   []uint64 // scratch: per-bank indices
	preds []bool   // scratch: per-bank predictions

	// Memoisation across the Predict/Update pair the runner issues per
	// branch: idx depends only on the reference key (so idxOK survives
	// updates), while preds and the vote read bank state (voteOK is
	// cleared whenever the banks change).
	keyAddr, keyHist uint64
	idxOK            bool
	voteOK           bool
	lastVote         bool
}

// Config parameterises a skewed predictor.
type Config struct {
	// Banks is the number of predictor banks (odd, >= 3; default 3).
	Banks int
	// BankBits n gives 2^n entries per bank.
	BankBits uint
	// HistoryBits is the global-history length k.
	HistoryBits uint
	// CounterBits is the automaton width (1 or 2; default 2).
	CounterBits uint
	// Policy selects partial or total update (default partial).
	Policy UpdatePolicy
	// Enhanced selects the enhanced skewed predictor of section 6:
	// bank 0 is indexed by address alone (bit truncation), so its
	// entries see the much shorter per-address last-use distance and
	// rescue long-history references whose other banks have aliased.
	// Enhanced requires exactly 3 banks.
	Enhanced bool
	// SharedHysteresis selects the distributed encoding of the
	// future-work section (and of the Alpha EV8): banks store one
	// prediction bit per entry plus one hysteresis bit shared by
	// 2^SharedHysteresis entries, costing 1 + 2^-SharedHysteresis
	// bits/entry instead of CounterBits. Requires CounterBits == 2
	// (the encoding is a decomposition of the 2-bit automaton).
	// Zero means full private counters.
	SharedHysteresis uint
}

// NewGSkewed builds a skewed predictor from cfg.
func NewGSkewed(cfg Config) (*GSkewed, error) {
	if cfg.Banks == 0 {
		cfg.Banks = 3
	}
	if cfg.Banks < 3 || cfg.Banks%2 == 0 {
		return nil, fmt.Errorf("predictor: bank count %d must be odd and >= 3", cfg.Banks)
	}
	if cfg.Enhanced && cfg.Banks != 3 {
		return nil, fmt.Errorf("predictor: enhanced gskewed requires 3 banks, got %d", cfg.Banks)
	}
	if cfg.CounterBits == 0 {
		cfg.CounterBits = 2
	}
	if cfg.BankBits < skewfn.MinBits || cfg.BankBits > skewfn.MaxBits {
		return nil, fmt.Errorf("predictor: bank index width %d out of range [%d,%d]",
			cfg.BankBits, skewfn.MinBits, skewfn.MaxBits)
	}
	if cfg.HistoryBits > 30 {
		return nil, fmt.Errorf("predictor: history length %d out of range [0,30]", cfg.HistoryBits)
	}
	if cfg.SharedHysteresis > 0 && cfg.CounterBits != 2 {
		return nil, fmt.Errorf("predictor: shared hysteresis requires 2-bit counters, got %d", cfg.CounterBits)
	}
	if cfg.SharedHysteresis > 8 {
		return nil, fmt.Errorf("predictor: shared hysteresis group shift %d out of range [0,8]", cfg.SharedHysteresis)
	}
	g := &GSkewed{
		skew:     skewfn.New(cfg.BankBits),
		policy:   cfg.Policy,
		histBits: cfg.HistoryBits,
		enhanced: cfg.Enhanced,
		idx:      make([]uint64, cfg.Banks),
		preds:    make([]bool, cfg.Banks),
	}
	for i := 0; i < cfg.Banks; i++ {
		if cfg.SharedHysteresis > 0 {
			g.banks = append(g.banks, counter.NewSplitTable(1<<cfg.BankBits, cfg.SharedHysteresis))
		} else {
			t := counter.NewTable(1<<cfg.BankBits, cfg.CounterBits)
			g.banks = append(g.banks, t)
			g.tabs = append(g.tabs, t)
		}
	}
	if cfg.Enhanced {
		g.name = "egskew"
	} else {
		g.name = "gskewed"
	}
	return g, nil
}

// MustGSkewed is NewGSkewed, panicking on configuration errors.
// Intended for experiment tables whose configurations are static.
func MustGSkewed(cfg Config) *GSkewed {
	g, err := NewGSkewed(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// indices fills g.idx for the reference, reusing the memoised indices
// when the reference key repeats.
func (g *GSkewed) indices(addr, hist uint64) {
	if g.idxOK && g.keyAddr == addr && g.keyHist == hist {
		return
	}
	g.keyAddr, g.keyHist = addr, hist
	g.idxOK, g.voteOK = true, false
	v := indexfn.Vector(addr, hist, g.histBits)
	if g.enhanced {
		// Bank 0: plain address truncation; banks 1 and 2: f1, f2 of
		// the full vector (section 6).
		g.idx[0] = addr & g.skew.Mask()
		g.idx[1] = g.skew.F1(v)
		g.idx[2] = g.skew.F2(v)
		return
	}
	g.skew.Indices(g.idx, v)
}

// vote computes per-bank predictions into g.preds and returns the
// majority direction.
func (g *GSkewed) vote() bool {
	ayes := 0
	if g.tabs != nil {
		// Devirtualised: direct (inlinable) table reads.
		for k, t := range g.tabs {
			p := t.Predict(g.idx[k])
			g.preds[k] = p
			if p {
				ayes++
			}
		}
		return ayes*2 > len(g.tabs)
	}
	for k, bank := range g.banks {
		p := bank.Predict(g.idx[k])
		g.preds[k] = p
		if p {
			ayes++
		}
	}
	return ayes*2 > len(g.banks)
}

// cachedVote returns the majority direction for the current indices,
// reusing the vote (and g.preds) computed by a preceding Predict of
// the same reference when the banks have not changed since.
func (g *GSkewed) cachedVote() bool {
	if !g.voteOK {
		g.lastVote = g.vote()
		g.voteOK = true
	}
	return g.lastVote
}

// Predict implements Predictor.
func (g *GSkewed) Predict(addr, hist uint64) bool {
	g.indices(addr, hist)
	return g.cachedVote()
}

// Update implements Predictor.
func (g *GSkewed) Update(addr, hist uint64, taken bool) {
	g.indices(addr, hist)
	g.train(g.cachedVote(), taken)
}

// Step implements Stepper: Predict and Update fused, computing the
// indices and the vote once.
func (g *GSkewed) Step(addr, hist uint64, taken bool) bool {
	g.indices(addr, hist)
	overall := g.cachedVote()
	g.train(overall, taken)
	return overall
}

// train applies the update policy given the overall vote.
func (g *GSkewed) train(overall, taken bool) {
	partialSkip := g.policy == PartialUpdate && overall == taken
	if g.tabs != nil {
		for k, t := range g.tabs {
			if partialSkip && g.preds[k] != taken {
				// Overall prediction was good; leave the dissenting
				// bank to serve whatever substream it is tracking.
				continue
			}
			t.Update(g.idx[k], taken)
		}
	} else {
		for k, bank := range g.banks {
			if partialSkip && g.preds[k] != taken {
				continue
			}
			bank.Update(g.idx[k], taken)
		}
	}
	g.voteOK = false // bank state changed
}

// Name implements Predictor.
func (g *GSkewed) Name() string { return g.name }

// HistoryBits implements Predictor.
func (g *GSkewed) HistoryBits() uint { return g.histBits }

// StorageBits implements Predictor.
func (g *GSkewed) StorageBits() int {
	total := 0
	for _, b := range g.banks {
		total += b.StorageBits()
	}
	return total
}

// Reset implements Predictor.
func (g *GSkewed) Reset() {
	for _, b := range g.banks {
		b.Reset()
	}
	g.voteOK = false
}

// Banks returns the number of banks.
func (g *GSkewed) Banks() int { return len(g.banks) }

// BankEntries returns the per-bank entry count.
func (g *GSkewed) BankEntries() int { return g.banks[0].Len() }

// Policy returns the update policy.
func (g *GSkewed) Policy() UpdatePolicy { return g.policy }

// BankBits returns the per-bank index width n (2^n entries per bank).
func (g *GSkewed) BankBits() uint { return g.skew.Bits() }

// Enhanced reports whether bank 0 is indexed by address truncation
// (the enhanced skewed predictor of section 6).
func (g *GSkewed) Enhanced() bool { return g.enhanced }

// BankTables exposes the plain counter tables backing the banks, in
// bank order, or nil when the banks use the shared-hysteresis
// encoding. The compiled kernel layer shares their storage.
func (g *GSkewed) BankTables() []*counter.Table { return g.tabs }

// InvalidateMemo implements MemoInvalidator: it drops the memoised
// indices and vote, which go stale when bank state is trained without
// going through Update (i.e. by a compiled kernel).
func (g *GSkewed) InvalidateMemo() { g.idxOK, g.voteOK = false, false }

// IndicesFor returns the per-bank table indices a reference maps to.
// It allocates; it exists for diagnostics, tools and tests, not for
// the simulation hot path.
func (g *GSkewed) IndicesFor(addr, hist uint64) []uint64 {
	g.indices(addr, hist)
	out := make([]uint64, len(g.idx))
	copy(out, g.idx)
	return out
}

// BankValue returns the raw counter state bank k holds for the given
// reference (as an equivalent 2-bit state for shared-hysteresis
// banks). Diagnostic API.
func (g *GSkewed) BankValue(k int, addr, hist uint64) uint8 {
	g.indices(addr, hist)
	switch b := g.banks[k].(type) {
	case *counter.Table:
		return b.Value(g.idx[k])
	case *counter.SplitTable:
		return b.Value(g.idx[k])
	default:
		panic("predictor: unknown bank type")
	}
}

// PredictConfident returns the majority prediction together with a
// confidence signal: unanimous is true when every bank agrees. Vote
// margins are the natural confidence estimator of a skewed predictor
// (the EV8 design used them); the ext-confidence experiment quantifies
// how much more accurate unanimous predictions are.
func (g *GSkewed) PredictConfident(addr, hist uint64) (taken, unanimous bool) {
	g.indices(addr, hist)
	taken = g.cachedVote()
	unanimous = true
	for _, p := range g.preds {
		if p != taken {
			unanimous = false
			break
		}
	}
	return taken, unanimous
}

// String describes the configuration the way the paper writes it,
// e.g. "3x4k-gskewed(h8,2bit,partial)".
func (g *GSkewed) String() string {
	enc := "?"
	switch b := g.banks[0].(type) {
	case *counter.Table:
		enc = fmt.Sprintf("%dbit", b.Bits())
	case *counter.SplitTable:
		enc = fmt.Sprintf("1+h/%d", b.GroupSize())
	}
	return fmt.Sprintf("%dx%s-%s(h%d,%s,%s)",
		len(g.banks), fmtEntries(g.banks[0].Len()), g.name,
		g.histBits, enc, g.policy)
}
