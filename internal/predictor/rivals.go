package predictor

import (
	"fmt"

	"gskew/internal/counter"
	"gskew/internal/indexfn"
)

// This file implements the two contemporaneous anti-aliasing
// predictors proposed the same year as the skewed predictor, as
// comparison baselines for the ext-rivals experiment:
//
//   - the agree predictor (Sprangle, Chappell, Alsup, Patt — ISCA
//     1997): counters predict whether the branch AGREES with a
//     per-branch bias bit, converting destructive interference between
//     same-bias branches into constructive interference;
//   - the bi-mode predictor (Lee, Chen, Mudge — MICRO 1997): two
//     gshare-indexed direction tables ("taken-leaning" and
//     "not-taken-leaning") with an address-indexed choice table
//     steering each branch to the table matching its bias, so branches
//     of opposite bias stop sharing counters.
//
// Both attack exactly the phenomenon the paper names conflict
// aliasing, with different mechanisms than skewing.

// Agree is the agree predictor. The bias bit for each branch is
// latched on first encounter (the paper version stores it in the BTB;
// here an address-indexed table of once-set bits), and a
// gshare-indexed table of 2-bit counters predicts agreement with that
// bias.
type Agree struct {
	fn       indexfn.Func
	agree    *counter.Table
	biasBit  []bool
	biasSet  []bool
	biasMask uint64
}

// newAgree is the agree implementation behind Spec.New.
func newAgree(n, k, biasBits, counterBits uint) (*Agree, error) {
	if biasBits < 1 || biasBits > 26 {
		return nil, fmt.Errorf("predictor: bias table width %d out of range [1,26]", biasBits)
	}
	if counterBits == 0 {
		counterBits = 2
	}
	return &Agree{
		fn:       indexfn.NewGShare(n, k),
		agree:    counter.NewTable(1<<n, counterBits),
		biasBit:  make([]bool, 1<<biasBits),
		biasSet:  make([]bool, 1<<biasBits),
		biasMask: uint64(1)<<biasBits - 1,
	}, nil
}

// bias returns the branch's latched bias (default taken before the
// first outcome is seen, matching static not-taken... the original
// uses the first outcome; before that, predict taken).
func (a *Agree) bias(addr uint64) bool {
	i := addr & a.biasMask
	if !a.biasSet[i] {
		return true
	}
	return a.biasBit[i]
}

// Predict implements Predictor: taken iff (agree counter) == (bias).
func (a *Agree) Predict(addr, hist uint64) bool {
	agrees := a.agree.Predict(a.fn.Index(addr, hist))
	return agrees == a.bias(addr)
}

// Update implements Predictor. The first outcome of a branch latches
// its bias bit; the agreement table trains toward outcome==bias.
func (a *Agree) Update(addr, hist uint64, taken bool) {
	i := addr & a.biasMask
	if !a.biasSet[i] {
		a.biasSet[i] = true
		a.biasBit[i] = taken
	}
	a.agree.Update(a.fn.Index(addr, hist), taken == a.biasBit[i])
}

// Name implements Predictor.
func (a *Agree) Name() string { return "agree" }

// HistoryBits implements Predictor.
func (a *Agree) HistoryBits() uint { return a.fn.HistoryBits() }

// StorageBits implements Predictor: agreement counters plus bias and
// valid bits.
func (a *Agree) StorageBits() int {
	return a.agree.StorageBits() + 2*len(a.biasBit)
}

// Reset implements Predictor.
func (a *Agree) Reset() {
	a.agree.Reset()
	for i := range a.biasBit {
		a.biasBit[i] = false
		a.biasSet[i] = false
	}
}

// String describes the configuration.
func (a *Agree) String() string {
	return fmt.Sprintf("%s-agree(h%d,bias%d)", fmtEntries(a.agree.Len()),
		a.fn.HistoryBits(), len(a.biasBit))
}

// BiMode is the bi-mode predictor: two gshare-indexed direction banks
// plus an address-indexed choice table. The choice table picks the
// bank; only the chosen bank trains on the outcome (the choice table
// trains unless it was overridden successfully).
type BiMode struct {
	fn     indexfn.Func
	taken  *counter.Table // "taken-leaning" bank
	ntaken *counter.Table // "not-taken-leaning" bank
	choice *counter.Table
	chMask uint64
}

// newBiMode is the bi-mode implementation behind Spec.New.
func newBiMode(n, k, choiceBits, counterBits uint) (*BiMode, error) {
	if choiceBits < 1 || choiceBits > 26 {
		return nil, fmt.Errorf("predictor: choice table width %d out of range [1,26]", choiceBits)
	}
	if counterBits == 0 {
		counterBits = 2
	}
	b := &BiMode{
		fn:     indexfn.NewGShare(n, k),
		taken:  counter.NewTable(1<<n, counterBits),
		ntaken: counter.NewTable(1<<n, counterBits),
		choice: counter.NewTable(1<<choiceBits, counterBits),
		chMask: uint64(1)<<choiceBits - 1,
	}
	// Bias the banks toward their leanings so a fresh predictor
	// behaves like its name: the not-taken bank starts weakly
	// not-taken.
	for i := 0; i < b.ntaken.Len(); i++ {
		b.ntaken.Set(uint64(i), counter.WeaklyNotTaken(counterBits).Value())
	}
	return b, nil
}

// Predict implements Predictor.
func (b *BiMode) Predict(addr, hist uint64) bool {
	i := b.fn.Index(addr, hist)
	if b.choice.Predict(addr & b.chMask) {
		return b.taken.Predict(i)
	}
	return b.ntaken.Predict(i)
}

// Update implements Predictor, with the bi-mode partial-update rule:
// only the chosen direction bank trains; the choice table trains
// toward the outcome unless the chosen bank predicted correctly
// against the choice's own leaning.
func (b *BiMode) Update(addr, hist uint64, taken bool) {
	i := b.fn.Index(addr, hist)
	ci := addr & b.chMask
	useTaken := b.choice.Predict(ci)
	var bankPred bool
	if useTaken {
		bankPred = b.taken.Predict(i)
		b.taken.Update(i, taken)
	} else {
		bankPred = b.ntaken.Predict(i)
		b.ntaken.Update(i, taken)
	}
	// Choice update rule (Lee et al.): do not update the choice when
	// it steered to a bank that predicted correctly although the
	// outcome disagrees with the choice's direction.
	if !(bankPred == taken && useTaken != taken) {
		b.choice.Update(ci, taken)
	}
}

// Name implements Predictor.
func (b *BiMode) Name() string { return "bimode" }

// HistoryBits implements Predictor.
func (b *BiMode) HistoryBits() uint { return b.fn.HistoryBits() }

// StorageBits implements Predictor.
func (b *BiMode) StorageBits() int {
	return b.taken.StorageBits() + b.ntaken.StorageBits() + b.choice.StorageBits()
}

// Reset implements Predictor.
func (b *BiMode) Reset() {
	b.taken.Reset()
	b.choice.Reset()
	for i := 0; i < b.ntaken.Len(); i++ {
		b.ntaken.Set(uint64(i), counter.WeaklyNotTaken(b.ntaken.Bits()).Value())
	}
}

// String describes the configuration.
func (b *BiMode) String() string {
	return fmt.Sprintf("2x%s-bimode(h%d,choice%s)", fmtEntries(b.taken.Len()),
		b.fn.HistoryBits(), fmtEntries(b.choice.Len()))
}
