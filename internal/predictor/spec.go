package predictor

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"gskew/internal/counter"
	"gskew/internal/indexfn"
)

// Spec is the unified construction surface for every predictor family
// in the repository. It replaced (and has since retired) the
// historical mix of positional constructors with one config struct,
// one factory (Spec.New) and one canonical, round-trippable string
// form (ParseSpec / Spec.String), e.g.
//
//	gshare:n=14,k=12,ctr=2
//	gskewed:n=12,k=8,banks=3,ctr=2,policy=partial
//	2bcgskew:n=12,ks=7,k=14
//
// Only the fields a family uses are consulted (the rest are ignored,
// like unset Config fields); zero values take family defaults, which
// Normalize makes explicit. Every constructed predictor reports its
// own normalized Spec via the Speccer interface, which is also how
// internal/kernel recognizes compilable organisations.
//
// Composite predictors (Hybrid) are built from their components and
// have no Spec grammar.
type Spec struct {
	// Family is the organisation name: bimodal, gshare, gselect,
	// gskewed, egskew, 2bcgskew, agree, bimode, pas, skewed-pas,
	// unaliased, assoc-lru, tage or perceptron.
	Family string
	// N is the table (or per-bank) index width: 2^N entries. Key "n".
	N uint
	// Hist is the global-history length k (the long history for
	// 2bcgskew). Key "k".
	Hist uint
	// HistShort is 2bcgskew's short history length (G0/META). Key "ks".
	HistShort uint
	// Banks is the gskewed bank count (odd, >= 3; default 3). Key
	// "banks".
	Banks int
	// Ctr is the saturating-counter width (default 2). Key "ctr".
	Ctr uint
	// Policy selects partial or total update for the skewed families.
	// Key "policy" (values "partial", "total").
	Policy UpdatePolicy
	// SharedHyst selects gskewed's shared-hysteresis encoding: one
	// hysteresis bit per 2^SharedHyst entries (0 = private counters).
	// Key "shh".
	SharedHyst uint
	// Bias is the agree predictor's bias-table index width. Key "bias".
	Bias uint
	// Choice is the bi-mode choice-table index width. Key "choice".
	Choice uint
	// BHT is the per-address history-table index width of the pas
	// families. Key "bht".
	BHT uint
	// Local is the per-address (local) history length of the pas
	// families. Key "local".
	Local uint
	// Entries is the assoc-lru capacity (need not be a power of two).
	// Key "entries".
	Entries int
	// Tables is the tagged-component count (tage) or weight-table
	// count (perceptron). Key "tables".
	Tables int
	// Tag is the tage partial-tag width. Key "tag".
	Tag uint
	// HistMin is tage's shortest geometric history length L_1 (lengths
	// double per component up to Hist). Key "kmin".
	HistMin uint
	// Theta is the perceptron training threshold; 0 selects the
	// conventional default floor(1.93*k + 14). Key "theta".
	Theta int
}

// Speccer is implemented by every predictor that can report its own
// construction Spec. internal/kernel dispatches on the reported
// family when deciding whether an organisation compiles to a kernel.
type Speccer interface {
	Spec() Spec
}

// Families lists every family the Spec grammar accepts, in
// documentation order.
func Families() []string {
	return []string{
		"bimodal", "gshare", "gselect", "gskewed", "egskew", "2bcgskew",
		"agree", "bimode", "pas", "skewed-pas", "unaliased", "assoc-lru",
		"tage", "perceptron",
	}
}

// Normalize returns the spec with family defaults made explicit
// (counter width 2, three banks, zeroed irrelevant fields), the form
// Spec.String renders and constructed predictors report. Unknown
// families normalize to themselves.
func (s Spec) Normalize() Spec {
	t := s
	if t.Ctr == 0 {
		t.Ctr = 2
	}
	switch t.Family {
	case "bimodal":
		t = Spec{Family: t.Family, N: t.N, Ctr: t.Ctr}
	case "gshare", "gselect":
		t = Spec{Family: t.Family, N: t.N, Hist: t.Hist, Ctr: t.Ctr}
	case "gskewed":
		if t.Banks == 0 {
			t.Banks = 3
		}
		if t.SharedHyst > 0 {
			t.Ctr = 2 // the encoding decomposes the 2-bit automaton
		}
		t = Spec{Family: t.Family, N: t.N, Hist: t.Hist, Banks: t.Banks,
			Ctr: t.Ctr, Policy: t.Policy, SharedHyst: t.SharedHyst}
	case "egskew":
		if t.SharedHyst > 0 {
			t.Ctr = 2
		}
		t = Spec{Family: t.Family, N: t.N, Hist: t.Hist, Banks: 3,
			Ctr: t.Ctr, Policy: t.Policy, SharedHyst: t.SharedHyst}
	case "2bcgskew":
		t = Spec{Family: t.Family, N: t.N, Hist: t.Hist, HistShort: t.HistShort, Ctr: 2}
	case "agree":
		t = Spec{Family: t.Family, N: t.N, Hist: t.Hist, Bias: t.Bias, Ctr: t.Ctr}
	case "bimode":
		t = Spec{Family: t.Family, N: t.N, Hist: t.Hist, Choice: t.Choice, Ctr: t.Ctr}
	case "pas":
		t = Spec{Family: t.Family, N: t.N, BHT: t.BHT, Local: t.Local, Ctr: t.Ctr}
	case "skewed-pas":
		t = Spec{Family: t.Family, N: t.N, BHT: t.BHT, Local: t.Local,
			Ctr: t.Ctr, Policy: t.Policy}
	case "unaliased":
		t = Spec{Family: t.Family, Hist: t.Hist, Ctr: t.Ctr}
	case "assoc-lru":
		t = Spec{Family: t.Family, Entries: t.Entries, Hist: t.Hist, Ctr: t.Ctr}
	case "tage":
		// The tagged components default to 3-bit counters (the TAGE
		// papers' width), not the global 2-bit default.
		if s.Ctr == 0 {
			t.Ctr = 3
		}
		if t.Tables == 0 {
			t.Tables = 4
		}
		if t.Tag == 0 {
			t.Tag = 8
		}
		if t.HistMin == 0 {
			t.HistMin = 4
		}
		t = Spec{Family: t.Family, N: t.N, Hist: t.Hist, HistMin: t.HistMin,
			Tables: t.Tables, Tag: t.Tag, Ctr: t.Ctr}
	case "perceptron":
		// Ctr is the signed weight width; 8 bits is the conventional
		// perceptron default.
		if s.Ctr == 0 {
			t.Ctr = 8
		}
		if t.Tables == 0 {
			t.Tables = 8
		}
		if t.Theta == 0 {
			t.Theta = int(193*s.Hist+1400) / 100
		}
		t = Spec{Family: t.Family, N: t.N, Hist: t.Hist,
			Tables: t.Tables, Theta: t.Theta, Ctr: t.Ctr}
	}
	return t
}

// New builds the predictor the spec describes. Invalid configurations
// return an error (never panic), making the string form safe for
// untrusted command lines.
func (s Spec) New() (Predictor, error) {
	t := s.Normalize()
	if t.Ctr < 1 || t.Ctr > 8 {
		return nil, fmt.Errorf("predictor: counter width %d out of range [1,8]", t.Ctr)
	}
	switch t.Family {
	case "bimodal", "gshare", "gselect":
		if t.N < 1 || t.N > 30 {
			return nil, fmt.Errorf("predictor: index width %d out of range [1,30]", t.N)
		}
		if t.Hist > 30 {
			return nil, fmt.Errorf("predictor: history length %d out of range [0,30]", t.Hist)
		}
		var fn indexfn.Func
		switch t.Family {
		case "bimodal":
			fn = indexfn.NewBimodal(t.N)
		case "gshare":
			fn = indexfn.NewGShare(t.N, t.Hist)
		default:
			fn = indexfn.NewGSelect(t.N, t.Hist)
		}
		return NewSingle(fn, t.Ctr), nil
	case "gskewed", "egskew":
		return NewGSkewed(Config{
			Banks: t.Banks, BankBits: t.N, HistoryBits: t.Hist,
			CounterBits: t.Ctr, Policy: t.Policy,
			Enhanced: t.Family == "egskew", SharedHysteresis: t.SharedHyst,
		})
	case "2bcgskew":
		return newTwoBcGSkew(t.N, t.HistShort, t.Hist)
	case "agree", "bimode":
		if t.N < 1 || t.N > 30 {
			return nil, fmt.Errorf("predictor: index width %d out of range [1,30]", t.N)
		}
		if t.Hist > 30 {
			return nil, fmt.Errorf("predictor: history length %d out of range [0,30]", t.Hist)
		}
		if t.Family == "agree" {
			return newAgree(t.N, t.Hist, t.Bias, t.Ctr)
		}
		return newBiMode(t.N, t.Hist, t.Choice, t.Ctr)
	case "pas", "skewed-pas":
		if t.BHT < 1 || t.BHT > 26 {
			return nil, fmt.Errorf("predictor: BHT index width %d out of range [1,26]", t.BHT)
		}
		if t.Local > 30 {
			return nil, fmt.Errorf("predictor: local history length %d out of range [0,30]", t.Local)
		}
		if t.Family == "pas" {
			return newPAs(t.BHT, t.Local, t.N, t.Ctr)
		}
		return newSkewedPAs(t.BHT, t.Local, t.N, t.Ctr, t.Policy)
	case "unaliased":
		if t.Hist > 30 {
			return nil, fmt.Errorf("predictor: history length %d out of range [0,30]", t.Hist)
		}
		return NewUnaliased(t.Hist, t.Ctr), nil
	case "assoc-lru":
		if t.Entries < 1 {
			return nil, fmt.Errorf("predictor: assoc-lru needs entries >= 1, got %d", t.Entries)
		}
		if t.Hist > 30 {
			return nil, fmt.Errorf("predictor: history length %d out of range [0,30]", t.Hist)
		}
		return NewAssocLRU(t.Entries, t.Hist, t.Ctr), nil
	case "tage":
		return newTAGE(t.N, t.Hist, t.HistMin, t.Tables, t.Tag, t.Ctr)
	case "perceptron":
		return newPerceptron(t.N, t.Hist, t.Tables, t.Theta, t.Ctr)
	case "":
		return nil, fmt.Errorf("predictor: empty spec family")
	default:
		return nil, fmt.Errorf("predictor: unknown family %q (have %s)",
			t.Family, strings.Join(Families(), ", "))
	}
}

// MustSpec is Spec.New, panicking on configuration errors. Intended
// for experiment tables whose configurations are static.
func MustSpec(s Spec) Predictor {
	p, err := s.New()
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the canonical form, `family:key=val,...`, with the
// family's keys in a fixed order and defaults explicit, so that
// ParseSpec(s.String()) reproduces s.Normalize() exactly.
func (s Spec) String() string {
	t := s.Normalize()
	var kv []string
	add := func(k string, v any) { kv = append(kv, fmt.Sprintf("%s=%v", k, v)) }
	switch t.Family {
	case "bimodal":
		add("n", t.N)
	case "gshare", "gselect":
		add("n", t.N)
		add("k", t.Hist)
	case "gskewed":
		add("n", t.N)
		add("k", t.Hist)
		add("banks", t.Banks)
	case "egskew":
		add("n", t.N)
		add("k", t.Hist)
	case "2bcgskew":
		return fmt.Sprintf("2bcgskew:n=%d,ks=%d,k=%d", t.N, t.HistShort, t.Hist)
	case "agree":
		add("n", t.N)
		add("k", t.Hist)
		add("bias", t.Bias)
	case "bimode":
		add("n", t.N)
		add("k", t.Hist)
		add("choice", t.Choice)
	case "pas", "skewed-pas":
		add("bht", t.BHT)
		add("local", t.Local)
		add("n", t.N)
	case "unaliased":
		add("k", t.Hist)
	case "assoc-lru":
		add("entries", t.Entries)
		add("k", t.Hist)
	case "tage":
		add("n", t.N)
		add("k", t.Hist)
		add("kmin", t.HistMin)
		add("tables", t.Tables)
		add("tag", t.Tag)
	case "perceptron":
		add("n", t.N)
		add("k", t.Hist)
		add("tables", t.Tables)
		add("theta", t.Theta)
	default:
		return t.Family
	}
	add("ctr", t.Ctr)
	switch t.Family {
	case "gskewed", "egskew":
		add("policy", t.Policy)
		if t.SharedHyst > 0 {
			add("shh", t.SharedHyst)
		}
	case "skewed-pas":
		add("policy", t.Policy)
	}
	return t.Family + ":" + strings.Join(kv, ",")
}

// ParseSpec parses the canonical string form back into a Spec. It
// accepts any known family followed by comma-separated key=value
// pairs; keys irrelevant to the family are rejected. The result is
// normalized (family defaults explicit), so ParseSpec is the exact
// inverse of Spec.String: ParseSpec(s.String()) == s.Normalize().
func ParseSpec(text string) (Spec, error) {
	fam, rest, hasParams := strings.Cut(strings.TrimSpace(text), ":")
	fam = strings.TrimSpace(fam)
	known := false
	for _, f := range Families() {
		if fam == f {
			known = true
			break
		}
	}
	if !known {
		return Spec{}, fmt.Errorf("predictor: unknown family %q in spec %q (have %s)",
			fam, text, strings.Join(Families(), ", "))
	}
	s := Spec{Family: fam}
	if !hasParams || strings.TrimSpace(rest) == "" {
		return s.Normalize(), nil
	}
	seen := make(map[string]bool)
	for _, pair := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if !ok || key == "" || val == "" {
			return Spec{}, fmt.Errorf("predictor: malformed parameter %q in spec %q (want key=value)", pair, text)
		}
		if seen[key] {
			return Spec{}, fmt.Errorf("predictor: duplicate parameter %q in spec %q", key, text)
		}
		seen[key] = true
		if !keyAllowed(fam, key) {
			return Spec{}, fmt.Errorf("predictor: parameter %q does not apply to family %q (allowed: %s)",
				key, fam, strings.Join(allowedKeys(fam), ", "))
		}
		if key == "policy" {
			switch val {
			case "partial":
				s.Policy = PartialUpdate
			case "total":
				s.Policy = TotalUpdate
			default:
				return Spec{}, fmt.Errorf("predictor: unknown policy %q in spec %q (want partial or total)", val, text)
			}
			continue
		}
		u, err := strconv.ParseUint(val, 10, 32)
		if err != nil {
			return Spec{}, fmt.Errorf("predictor: parameter %s=%q in spec %q is not a number", key, val, text)
		}
		switch key {
		case "n":
			s.N = uint(u)
		case "k":
			s.Hist = uint(u)
		case "ks":
			s.HistShort = uint(u)
		case "banks":
			s.Banks = int(u)
		case "ctr":
			s.Ctr = uint(u)
		case "shh":
			s.SharedHyst = uint(u)
		case "bias":
			s.Bias = uint(u)
		case "choice":
			s.Choice = uint(u)
		case "bht":
			s.BHT = uint(u)
		case "local":
			s.Local = uint(u)
		case "entries":
			s.Entries = int(u)
		case "tables":
			s.Tables = int(u)
		case "tag":
			s.Tag = uint(u)
		case "kmin":
			s.HistMin = uint(u)
		case "theta":
			s.Theta = int(u)
		}
	}
	return s.Normalize(), nil
}

// MustParseSpec builds the predictor a canonical spec string
// describes, panicking on errors. Intended for static tables.
func MustParseSpec(text string) Predictor {
	s, err := ParseSpec(text)
	if err != nil {
		panic(err)
	}
	return MustSpec(s)
}

// specKeys maps each family to the parameter keys its grammar accepts.
var specKeys = map[string][]string{
	"bimodal":    {"n", "ctr"},
	"gshare":     {"n", "k", "ctr"},
	"gselect":    {"n", "k", "ctr"},
	"gskewed":    {"n", "k", "banks", "ctr", "policy", "shh"},
	"egskew":     {"n", "k", "ctr", "policy", "shh"},
	"2bcgskew":   {"n", "ks", "k"},
	"agree":      {"n", "k", "bias", "ctr"},
	"bimode":     {"n", "k", "choice", "ctr"},
	"pas":        {"bht", "local", "n", "ctr"},
	"skewed-pas": {"bht", "local", "n", "ctr", "policy"},
	"unaliased":  {"k", "ctr"},
	"assoc-lru":  {"entries", "k", "ctr"},
	"tage":       {"n", "k", "kmin", "tables", "tag", "ctr"},
	"perceptron": {"n", "k", "tables", "theta", "ctr"},
}

func keyAllowed(fam, key string) bool {
	for _, k := range specKeys[fam] {
		if k == key {
			return true
		}
	}
	return false
}

func allowedKeys(fam string) []string {
	keys := append([]string(nil), specKeys[fam]...)
	sort.Strings(keys)
	return keys
}

// AllowedKeys returns the parameter keys family's grammar accepts, in
// sorted order (empty for unknown families). It backs grammar
// discovery surfaces such as the simulation server's /v1/specs.
func AllowedKeys(family string) []string { return allowedKeys(family) }

// Spec methods on the concrete predictors: each reports the normalized
// spec that reconstructs it.

// Spec implements Speccer. Singles hosting a custom index function
// (outside bimodal/gshare/gselect) report the function's name as the
// family; such specs do not reconstruct.
func (s *Single) Spec() Spec {
	sp := Spec{N: s.fn.Bits(), Hist: s.fn.HistoryBits(), Ctr: s.table.Bits()}
	switch s.fn.(type) {
	case *indexfn.Bimodal:
		sp.Family = "bimodal"
	case *indexfn.GShare:
		sp.Family = "gshare"
	case *indexfn.GSelect:
		sp.Family = "gselect"
	default:
		sp.Family = s.fn.Name()
	}
	return sp.Normalize()
}

// Spec implements Speccer.
func (g *GSkewed) Spec() Spec {
	sp := Spec{
		N: g.BankBits(), Hist: g.histBits, Banks: len(g.banks),
		Policy: g.policy,
	}
	if g.enhanced {
		sp.Family = "egskew"
	} else {
		sp.Family = "gskewed"
	}
	switch b := g.banks[0].(type) {
	case *counter.Table:
		sp.Ctr = b.Bits()
	case *counter.SplitTable:
		sp.Ctr = 2
		sp.SharedHyst = uint(bits.TrailingZeros(uint(b.GroupSize())))
	}
	return sp.Normalize()
}

// Spec implements Speccer.
func (t *TwoBcGSkew) Spec() Spec {
	return Spec{Family: "2bcgskew", N: t.IndexBits(),
		HistShort: t.histG0, Hist: t.histG1}.Normalize()
}

// Spec implements Speccer.
func (a *Agree) Spec() Spec {
	return Spec{Family: "agree", N: a.fn.Bits(), Hist: a.fn.HistoryBits(),
		Bias: uint(bits.TrailingZeros(uint(len(a.biasBit)))), Ctr: a.agree.Bits()}.Normalize()
}

// Spec implements Speccer.
func (b *BiMode) Spec() Spec {
	return Spec{Family: "bimode", N: b.fn.Bits(), Hist: b.fn.HistoryBits(),
		Choice: uint(bits.TrailingZeros(uint(b.choice.Len()))), Ctr: b.taken.Bits()}.Normalize()
}

// Spec implements Speccer.
func (p *PAs) Spec() Spec {
	return Spec{Family: "pas", N: p.phtBits, BHT: uint(bits.TrailingZeros(uint(p.bht.Tables()))),
		Local: p.localK, Ctr: p.pht.Bits()}.Normalize()
}

// Spec implements Speccer.
func (s *SkewedPAs) Spec() Spec {
	return Spec{Family: "skewed-pas", N: s.skew.Bits(),
		BHT: uint(bits.TrailingZeros(uint(s.bht.Tables()))), Local: s.localK,
		Ctr: s.banks[0].Bits(), Policy: s.policy}.Normalize()
}

// Spec implements Speccer.
func (u *Unaliased) Spec() Spec {
	return Spec{Family: "unaliased", Hist: u.histBits, Ctr: u.ctrBits}.Normalize()
}

// Spec implements Speccer.
func (a *AssocLRU) Spec() Spec {
	return Spec{Family: "assoc-lru", Entries: a.cache.Capacity(),
		Hist: a.histBits, Ctr: a.ctrBits}.Normalize()
}
