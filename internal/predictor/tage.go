package predictor

import (
	"fmt"

	"gskew/internal/counter"
)

// This file implements TAGE (Seznec & Michaud, "A case for (partially)
// TAgged GEometric history length branch prediction", JILP 2006), the
// modern descendant of the paper's aliasing analysis: where skewing
// spreads conflicting branches across banks, TAGE removes the conflict
// outright by tagging each history-indexed entry and backing it with a
// chain of components whose history lengths grow geometrically.
//
// The organisation here is the standard one:
//
//   - a tag-less base bimodal table of 2^n 2-bit counters;
//   - T tagged components, each 2^n entries of {tag, ctr, u}: a
//     tag-bit partial tag, a ctr-bit signed-direction counter and a
//     2-bit usefulness counter;
//   - component i (1-based) sees the most recent L_i history bits,
//     L_i = min(k, kmin*2^(i-1)) — a ratio-2 geometric series capped
//     at the spec's k (integer arithmetic only, so the independent
//     refmodel transcription cannot disagree by a rounding mode);
//   - long histories enter the index and tag hashes through folding
//     (FoldHistory): the L-bit history is cut into width-sized chunks
//     which are XORed together;
//   - prediction comes from the matching component with the longest
//     history (the provider), falling back to the base table;
//   - on a mispredict a new entry is allocated in a longer component
//     whose usefulness has decayed to zero, and usefulness counters
//     age periodically so stale entries eventually free up.
//
// TAGE state is not a linear automaton over GF(2)-hashed indices —
// tag-match steering and allocation are data-dependent — so the family
// deliberately has no internal/kernel compiled form (kernel.Compile
// reports false) and runs on the generic/Stepper paths of the
// simulator.

// tageMaxTables bounds the tagged-component chain; resolve uses
// fixed-size scratch arrays so a prediction allocates nothing.
const tageMaxTables = 8

// tageAgePeriod is the usefulness-ageing period: every tageAgePeriod
// Update calls, every usefulness counter is halved. The period is part
// of the observable specification (refmodel transcribes the same
// number) and is short enough that verification traces exercise it.
const tageAgePeriod = 8192

// tageBank is one tagged component: parallel arrays of partial tags,
// direction counters and 2-bit usefulness counters.
type tageBank struct {
	tags []uint32
	ctrs *counter.Table
	us   []uint8
}

// TAGE is the tagged geometric-history-length predictor.
type TAGE struct {
	n       uint   // index width: 2^n entries per table (base and tagged)
	k       uint   // longest history length L_T
	kmin    uint   // shortest tagged history length L_1
	tagBits uint   // partial-tag width
	ctrBits uint   // tagged-component counter width
	lens    []uint // lens[i] is L_{i+1}
	base    *counter.Table
	comps   []tageBank
	updates int
	// foldSkew is 0 in a correct predictor; TamperTAGEFold sets it to 1
	// for the verification selftest, shifting each folded-history chunk
	// by width-1 instead of width.
	foldSkew uint
}

// newTAGE is the implementation behind Spec.New.
func newTAGE(n, k, kmin uint, tables int, tagBits, ctrBits uint) (*TAGE, error) {
	if n < 2 || n > 26 {
		return nil, fmt.Errorf("predictor: tage index width %d out of range [2,26]", n)
	}
	if k > 30 {
		return nil, fmt.Errorf("predictor: history length %d out of range [0,30]", k)
	}
	if kmin < 1 || kmin > 30 {
		return nil, fmt.Errorf("predictor: tage kmin %d out of range [1,30]", kmin)
	}
	if tables < 1 || tables > tageMaxTables {
		return nil, fmt.Errorf("predictor: tage tagged-component count %d out of range [1,%d]", tables, tageMaxTables)
	}
	if tagBits < 2 || tagBits > 16 {
		return nil, fmt.Errorf("predictor: tage tag width %d out of range [2,16]", tagBits)
	}
	t := &TAGE{n: n, k: k, kmin: kmin, tagBits: tagBits, ctrBits: ctrBits}
	for i := 0; i < tables; i++ {
		// L_{i+1} = min(k, kmin * 2^i): ratio-2 geometric, capped at k.
		l := kmin << uint(i)
		if l > k || l>>uint(i) != kmin { // cap, shift-overflow safe
			l = k
		}
		t.lens = append(t.lens, l)
		t.comps = append(t.comps, tageBank{
			tags: make([]uint32, 1<<n),
			ctrs: counter.NewTable(1<<n, ctrBits),
			us:   make([]uint8, 1<<n),
		})
	}
	t.base = counter.NewTable(1<<n, 2)
	return t, nil
}

// FoldHistory is the folded-history hash used by the TAGE index and
// tag functions: the low length bits of hist are cut into width-bit
// chunks (LSB first) and XORed together, so every history bit
// participates in a width-bit result. length must be at most 64 and
// width at least 1.
func FoldHistory(hist uint64, length, width uint) uint64 {
	if width < 1 {
		panic("predictor: fold width must be >= 1")
	}
	return foldWith(hist, length, width, width)
}

// foldWith folds with an explicit chunk step, the hook the selftest
// fault uses; step == width is the correct fold.
func foldWith(hist uint64, length, width, step uint) uint64 {
	v := hist
	if length < 64 {
		v &= uint64(1)<<length - 1
	}
	if step < 1 {
		step = 1
	}
	mask := uint64(1)<<width - 1
	if width >= 64 {
		mask = ^uint64(0)
	}
	var r uint64
	for v != 0 {
		r ^= v & mask
		v >>= step
	}
	return r
}

// fold applies the predictor's fold (correct, or skewed by the planted
// selftest fault).
func (t *TAGE) fold(hist uint64, length, width uint) uint64 {
	return foldWith(hist, length, width, width-t.foldSkew)
}

// index returns component i's table index: branch address bits spread
// per component XORed with the folded history.
func (t *TAGE) index(addr, hist uint64, i int) uint64 {
	f := t.fold(hist, t.lens[i], t.n)
	return (addr ^ addr>>uint(i+1) ^ f) & (uint64(1)<<t.n - 1)
}

// tag returns component i's partial tag: the address XORed with two
// differently-sized history folds (the second shifted up one bit, the
// standard trick that decorrelates tag and index aliasing).
func (t *TAGE) tag(addr, hist uint64, i int) uint64 {
	f1 := t.fold(hist, t.lens[i], t.tagBits)
	f2 := t.fold(hist, t.lens[i], t.tagBits-1)
	return (addr ^ f1 ^ f2<<1) & (uint64(1)<<t.tagBits - 1)
}

// tageRef is the resolved per-reference picture: indices, tags, the
// provider/alternate components and their predictions. Fixed-size
// arrays keep resolution allocation-free.
type tageRef struct {
	idx, tag      [tageMaxTables]uint64
	baseIdx       uint64
	provider, alt int // component indices, -1 = base
	providerPred  bool
	altPred       bool
	final         bool
}

// resolve computes the whole prediction picture without mutating
// state.
func (t *TAGE) resolve(addr, hist uint64) tageRef {
	r := tageRef{provider: -1, alt: -1}
	r.baseIdx = addr & (uint64(1)<<t.n - 1)
	for i := range t.comps {
		r.idx[i] = t.index(addr, hist, i)
		r.tag[i] = t.tag(addr, hist, i)
	}
	for i := len(t.comps) - 1; i >= 0; i-- {
		if uint64(t.comps[i].tags[r.idx[i]]) == r.tag[i] {
			if r.provider < 0 {
				r.provider = i
			} else {
				r.alt = i
				break
			}
		}
	}
	basePred := t.base.Predict(r.baseIdx)
	r.altPred = basePred
	if r.alt >= 0 {
		r.altPred = t.comps[r.alt].ctrs.Predict(r.idx[r.alt])
	}
	r.final = basePred
	if r.provider >= 0 {
		r.providerPred = t.comps[r.provider].ctrs.Predict(r.idx[r.provider])
		r.final = r.providerPred
	}
	return r
}

// Predict implements Predictor: the longest matching tagged component
// wins; the base table is the fallback. Predict does not change state.
func (t *TAGE) Predict(addr, hist uint64) bool {
	return t.resolve(addr, hist).final
}

// Update implements Predictor: train the provider (or the base), steer
// the provider's usefulness by whether it beat the alternate
// prediction, allocate a longer entry on a mispredict, and age all
// usefulness counters periodically.
func (t *TAGE) Update(addr, hist uint64, taken bool) {
	r := t.resolve(addr, hist)
	t.update(r, taken)
}

// Step implements Stepper: one resolution serves both the prediction
// and the training.
func (t *TAGE) Step(addr, hist uint64, taken bool) bool {
	r := t.resolve(addr, hist)
	t.update(r, taken)
	return r.final
}

func (t *TAGE) update(r tageRef, taken bool) {
	if r.provider >= 0 {
		c := &t.comps[r.provider]
		if r.providerPred != r.altPred {
			u := c.us[r.idx[r.provider]]
			if r.providerPred == taken {
				if u < 3 {
					c.us[r.idx[r.provider]] = u + 1
				}
			} else if u > 0 {
				c.us[r.idx[r.provider]] = u - 1
			}
		}
		c.ctrs.Update(r.idx[r.provider], taken)
	} else {
		t.base.Update(r.baseIdx, taken)
	}
	if r.final != taken && r.provider < len(t.comps)-1 {
		allocated := false
		for j := r.provider + 1; j < len(t.comps); j++ {
			c := &t.comps[j]
			if c.us[r.idx[j]] == 0 {
				c.tags[r.idx[j]] = uint32(r.tag[j])
				init := counter.WeaklyNotTaken(t.ctrBits)
				if taken {
					init = counter.WeaklyTaken(t.ctrBits)
				}
				c.ctrs.Set(r.idx[j], init.Value())
				allocated = true
				break
			}
		}
		if !allocated {
			for j := r.provider + 1; j < len(t.comps); j++ {
				t.comps[j].us[r.idx[j]]--
			}
		}
	}
	t.updates++
	if t.updates == tageAgePeriod {
		t.updates = 0
		for i := range t.comps {
			us := t.comps[i].us
			for e := range us {
				us[e] >>= 1
			}
		}
	}
}

// Name implements Predictor.
func (t *TAGE) Name() string { return "tage" }

// HistoryBits implements Predictor: the longest component length.
func (t *TAGE) HistoryBits() uint { return t.k }

// StorageBits implements Predictor: the base table plus, per tagged
// entry, the tag, the direction counter and the 2-bit usefulness
// counter.
func (t *TAGE) StorageBits() int {
	perEntry := int(t.tagBits + t.ctrBits + 2)
	return t.base.StorageBits() + len(t.comps)*(1<<t.n)*perEntry
}

// Reset implements Predictor.
func (t *TAGE) Reset() {
	t.base.Reset()
	for i := range t.comps {
		c := &t.comps[i]
		c.ctrs.Reset()
		for e := range c.tags {
			c.tags[e] = 0
			c.us[e] = 0
		}
	}
	t.updates = 0
}

// String describes the configuration.
func (t *TAGE) String() string {
	return fmt.Sprintf("tage(n=%d, k=%d, kmin=%d, tables=%d, tag=%d, ctr=%d)",
		t.n, t.k, t.kmin, len(t.comps), t.tagBits, t.ctrBits)
}

// Spec implements Speccer.
func (t *TAGE) Spec() Spec {
	return Spec{Family: "tage", N: t.n, Hist: t.k, HistMin: t.kmin,
		Tables: len(t.comps), Tag: t.tagBits, Ctr: t.ctrBits}.Normalize()
}

// TamperTAGEFold plants an off-by-one into p's folded-history
// rotation (chunks advance by width-1 bits instead of width), for the
// differential harness's fault-injection selftest. It reports whether
// p is a TAGE predictor the fault applies to.
func TamperTAGEFold(p Predictor) bool {
	t, ok := p.(*TAGE)
	if !ok {
		return false
	}
	t.foldSkew = 1
	return true
}
