package predictor

import (
	"fmt"

	"gskew/internal/counter"
)

// Hybrid is a McFarling-style combining predictor (the paper's related
// work [8] and the hybrid direction of its future work): two component
// predictors run in parallel and a table of 2-bit chooser counters,
// indexed by the branch address, selects which component's prediction
// to use. The chooser trains toward the component that was right when
// exactly one of them was.
type Hybrid struct {
	a, b    Predictor
	chooser *counter.Table
	mask    uint64
	name    string
}

// NewHybrid combines predictors a and b with a 2^chooserBits-entry
// chooser. The chooser predicts "use B" when its counter is in the
// upper half (so it starts weakly preferring B; pass the more
// history-capable component as b to warm up sensibly).
func NewHybrid(a, b Predictor, chooserBits uint) (*Hybrid, error) {
	if chooserBits < 1 || chooserBits > 26 {
		return nil, fmt.Errorf("predictor: chooser width %d out of range [1,26]", chooserBits)
	}
	return &Hybrid{
		a:       a,
		b:       b,
		chooser: counter.NewTable(1<<chooserBits, 2),
		mask:    uint64(1)<<chooserBits - 1,
		name:    fmt.Sprintf("hybrid(%s+%s)", a.Name(), b.Name()),
	}, nil
}

// MustHybrid is NewHybrid, panicking on configuration errors.
func MustHybrid(a, b Predictor, chooserBits uint) *Hybrid {
	h, err := NewHybrid(a, b, chooserBits)
	if err != nil {
		panic(err)
	}
	return h
}

// Predict implements Predictor.
func (h *Hybrid) Predict(addr, hist uint64) bool {
	if h.chooser.Predict(addr & h.mask) {
		return h.b.Predict(addr, hist)
	}
	return h.a.Predict(addr, hist)
}

// Update implements Predictor: both components always train; the
// chooser moves only when the components disagree about correctness.
func (h *Hybrid) Update(addr, hist uint64, taken bool) {
	pa := h.a.Predict(addr, hist) == taken
	pb := h.b.Predict(addr, hist) == taken
	if pa != pb {
		h.chooser.Update(addr&h.mask, pb)
	}
	h.a.Update(addr, hist, taken)
	h.b.Update(addr, hist, taken)
}

// Name implements Predictor.
func (h *Hybrid) Name() string { return h.name }

// HistoryBits implements Predictor: the longer of the two components,
// so the runner provides enough history for both.
func (h *Hybrid) HistoryBits() uint {
	if h.a.HistoryBits() > h.b.HistoryBits() {
		return h.a.HistoryBits()
	}
	return h.b.HistoryBits()
}

// StorageBits implements Predictor.
func (h *Hybrid) StorageBits() int {
	return h.a.StorageBits() + h.b.StorageBits() + h.chooser.StorageBits()
}

// Reset implements Predictor.
func (h *Hybrid) Reset() {
	h.a.Reset()
	h.b.Reset()
	h.chooser.Reset()
}

// Components returns the two component predictors (a, b).
func (h *Hybrid) Components() (Predictor, Predictor) { return h.a, h.b }

// String describes the configuration.
func (h *Hybrid) String() string {
	return fmt.Sprintf("hybrid(%v + %v, chooser %s)", h.a, h.b, fmtEntries(h.chooser.Len()))
}
