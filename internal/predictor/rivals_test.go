package predictor

import (
	"strings"
	"testing"

	"gskew/internal/rng"
)

func TestAgreeValidation(t *testing.T) {
	if _, err := (Spec{Family: "agree", N: 8, Hist: 4, Bias: 0, Ctr: 2}).New(); err == nil {
		t.Error("zero bias width accepted")
	}
	if _, err := (Spec{Family: "agree", N: 8, Hist: 4, Bias: 27, Ctr: 2}).New(); err == nil {
		t.Error("oversized bias width accepted")
	}
	if _, err := (Spec{Family: "agree", N: 8, Hist: 4, Bias: 8, Ctr: 0}).New(); err != nil {
		t.Error("default counter width rejected")
	}
}

func TestAgreeLearnsBothDirections(t *testing.T) {
	a := MustSpec(Spec{Family: "agree", N: 10, Hist: 6, Bias: 10, Ctr: 2})
	train(a, 0x10, 0x3, false, 6)
	train(a, 0x20, 0x3, true, 6)
	if a.Predict(0x10, 0x3) {
		t.Error("agree did not learn not-taken")
	}
	if !a.Predict(0x20, 0x3) {
		t.Error("agree did not learn taken")
	}
}

func TestAgreeConvertsInterference(t *testing.T) {
	// The defining mechanism: two same-history branches whose agree
	// counters collide but whose BIASES match their own behaviour
	// interfere constructively — both are predicted correctly even
	// though they share a counter and have opposite directions.
	a := MustSpec(Spec{Family: "agree", N: 4, Hist: 0, Bias: 10, Ctr: 2}).(*Agree) // tiny agreement table: collisions certain
	// Find two addresses sharing an agreement entry.
	var x, y uint64
	found := false
	for i := uint64(0); i < 256 && !found; i++ {
		for j := i + 1; j < 256; j++ {
			if a.fn.Index(i, 0) == a.fn.Index(j, 0) && i&a.biasMask != j&a.biasMask {
				x, y = i, j
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no colliding pair found")
	}
	// x is always taken, y never: opposite directions, shared counter.
	for i := 0; i < 50; i++ {
		a.Update(x, 0, true)
		a.Update(y, 0, false)
	}
	if !a.Predict(x, 0) || a.Predict(y, 0) {
		t.Error("agree failed to rescue opposite-direction aliasing pair")
	}
	// Contrast: a plain gshare table of the same size thrashes.
	g := MustSpec(Spec{Family: "gshare", N: 4, Hist: 0, Ctr: 2})
	for i := 0; i < 50; i++ {
		g.Update(x, 0, true)
		g.Update(y, 0, false)
	}
	if g.Predict(x, 0) != g.Predict(y, 0) {
		t.Error("expected the plain shared counter to give both the same prediction")
	}
}

func TestAgreeFirstEncounterLatchesBias(t *testing.T) {
	a := MustSpec(Spec{Family: "agree", N: 8, Hist: 4, Bias: 8, Ctr: 2})
	// Before any outcome: predicts taken (default bias).
	if !a.Predict(0x5, 0) {
		t.Error("default prediction should be taken")
	}
	// First outcome not-taken latches bias=false; agreement counter
	// starts agreeing -> prediction flips to not-taken.
	a.Update(0x5, 0, false)
	if a.Predict(0x5, 0) {
		t.Error("bias not latched from first outcome")
	}
	// The bias must NOT re-latch later.
	train(a, 0x5, 0, true, 8)
	if !a.Predict(0x5, 0) {
		t.Error("agreement counter cannot express disagreement")
	}
	a.Update(0x5, 0, false)
	a.Update(0x5, 0, false)
	a.Update(0x5, 0, false)
	if a.Predict(0x5, 0) {
		t.Error("should disagree with taken bias now")
	}
}

func TestAgreeMetadata(t *testing.T) {
	a := MustSpec(Spec{Family: "agree", N: 12, Hist: 8, Bias: 10, Ctr: 2}).(*Agree)
	if a.Name() != "agree" || a.HistoryBits() != 8 {
		t.Error("metadata wrong")
	}
	if got := a.StorageBits(); got != 1<<12*2+2*1024 {
		t.Errorf("StorageBits = %d", got)
	}
	if !strings.Contains(a.String(), "agree") {
		t.Errorf("String = %q", a.String())
	}
	train(a, 9, 1, false, 4)
	a.Reset()
	if !a.Predict(9, 1) {
		t.Error("Reset incomplete")
	}
}

func TestBiModeValidation(t *testing.T) {
	if _, err := (Spec{Family: "bimode", N: 8, Hist: 4, Choice: 0, Ctr: 2}).New(); err == nil {
		t.Error("zero choice width accepted")
	}
	if _, err := (Spec{Family: "bimode", N: 8, Hist: 4, Choice: 27, Ctr: 2}).New(); err == nil {
		t.Error("oversized choice width accepted")
	}
}

func TestBiModeLearnsBothDirections(t *testing.T) {
	b := MustSpec(Spec{Family: "bimode", N: 10, Hist: 6, Choice: 10, Ctr: 2})
	train(b, 0x10, 0x3, false, 8)
	train(b, 0x20, 0x3, true, 8)
	if b.Predict(0x10, 0x3) {
		t.Error("bimode did not learn not-taken")
	}
	if !b.Predict(0x20, 0x3) {
		t.Error("bimode did not learn taken")
	}
}

func TestBiModeSeparatesOppositeBiases(t *testing.T) {
	// Opposite-bias branches sharing a direction-table index no longer
	// interfere: the choice table routes them to different banks.
	b := MustSpec(Spec{Family: "bimode", N: 4, Hist: 0, Choice: 10, Ctr: 2}).(*BiMode)
	var x, y uint64
	found := false
	for i := uint64(0); i < 256 && !found; i++ {
		for j := i + 1; j < 256; j++ {
			if b.fn.Index(i, 0) == b.fn.Index(j, 0) && i&b.chMask != j&b.chMask {
				x, y = i, j
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no colliding pair found")
	}
	for i := 0; i < 50; i++ {
		b.Update(x, 0, true)
		b.Update(y, 0, false)
	}
	if !b.Predict(x, 0) || b.Predict(y, 0) {
		t.Error("bimode failed to separate opposite-bias aliasing pair")
	}
}

func TestBiModeMetadata(t *testing.T) {
	b := MustSpec(Spec{Family: "bimode", N: 12, Hist: 8, Choice: 10, Ctr: 2}).(*BiMode)
	if b.Name() != "bimode" || b.HistoryBits() != 8 {
		t.Error("metadata wrong")
	}
	if got := b.StorageBits(); got != 2*(1<<12*2)+1024*2 {
		t.Errorf("StorageBits = %d", got)
	}
	if !strings.Contains(b.String(), "bimode") {
		t.Errorf("String = %q", b.String())
	}
	train(b, 9, 1, false, 6)
	b.Reset()
	if !b.Predict(9, 1) {
		// After reset the choice table is weakly taken, steering to
		// the taken bank (weakly taken): prediction taken.
		t.Error("Reset incomplete")
	}
}

func TestRivalsOnBiasedPopulation(t *testing.T) {
	// Statistical sanity: on a population of strongly-biased branches
	// crammed into small tables, both rivals should beat a plain
	// gshare of the same direction-table size (that is their entire
	// point), and none should be anywhere near chance.
	r := rng.NewXoshiro256(21)
	type site struct {
		addr uint64
		p    float64
	}
	sites := make([]site, 400)
	for i := range sites {
		p := 0.95
		if r.Bool(0.5) {
			p = 0.05
		}
		sites[i] = site{addr: r.Uint64n(1 << 20), p: p}
	}
	run := func(p Predictor) int {
		rr := rng.NewXoshiro256(22)
		misses := 0
		hist := uint64(0)
		for i := 0; i < 80000; i++ {
			s := sites[rr.Intn(len(sites))]
			taken := rr.Bool(s.p)
			if p.Predict(s.addr, hist) != taken {
				misses++
			}
			p.Update(s.addr, hist, taken)
			hist = hist<<1 | map[bool]uint64{true: 1}[taken]
		}
		return misses
	}
	gshareMisses := run(MustSpec(Spec{Family: "gshare", N: 8, Hist: 6, Ctr: 2}))
	agreeMisses := run(MustSpec(Spec{Family: "agree", N: 8, Hist: 6, Bias: 12, Ctr: 2}))
	bimodeMisses := run(MustSpec(Spec{Family: "bimode", N: 8, Hist: 6, Choice: 12, Ctr: 2}))
	if agreeMisses >= gshareMisses {
		t.Errorf("agree (%d) not better than gshare (%d) under opposite-bias aliasing",
			agreeMisses, gshareMisses)
	}
	if bimodeMisses >= gshareMisses {
		t.Errorf("bimode (%d) not better than gshare (%d) under opposite-bias aliasing",
			bimodeMisses, gshareMisses)
	}
}

func BenchmarkAgree(b *testing.B) {
	p := MustSpec(Spec{Family: "agree", N: 14, Hist: 12, Bias: 12, Ctr: 2})
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&(1<<12-1)]
		taken := p.Predict(a, uint64(i))
		p.Update(a, uint64(i), taken)
	}
}

func BenchmarkBiMode(b *testing.B) {
	p := MustSpec(Spec{Family: "bimode", N: 14, Hist: 12, Choice: 12, Ctr: 2})
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&(1<<12-1)]
		taken := p.Predict(a, uint64(i))
		p.Update(a, uint64(i), taken)
	}
}
