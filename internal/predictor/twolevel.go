package predictor

import (
	"fmt"

	"gskew/internal/counter"
	"gskew/internal/history"
	"gskew/internal/indexfn"
	"gskew/internal/skewfn"
)

// This file implements the per-address two-level schemes the paper's
// future-work section points at ("the same technique could be applied
// to remove aliasing in other prediction methods, including
// per-address history schemes"): a PAs predictor (Yeh/Patt) and its
// skewed counterpart.
//
// A PAs predictor keeps a first-level table of per-branch history
// registers (indexed by low address bits) and a second-level table of
// counters indexed by the concatenation of address bits and the
// selected local history. Aliasing arises in both levels; skewing the
// second level removes its conflict component exactly as gskewed does
// for global schemes.

// PAs is a two-level per-address predictor. Unlike the global schemes,
// it ignores the runner-provided global history and maintains local
// histories internally (updated only by the branches that own them).
type PAs struct {
	bht     *history.PerAddress
	pht     *counter.Table
	phtBits uint
	localK  uint
	addrSel uint // address bits used in the PHT index
}

// newPAs is the PAs implementation behind Spec.New.
func newPAs(bhtBits, localK, phtBits, ctrBits uint) (*PAs, error) {
	if localK > phtBits {
		return nil, fmt.Errorf("predictor: local history %d exceeds PHT index %d", localK, phtBits)
	}
	if phtBits < 1 || phtBits > 26 {
		return nil, fmt.Errorf("predictor: PHT index width %d out of range [1,26]", phtBits)
	}
	if ctrBits == 0 {
		ctrBits = 2
	}
	return &PAs{
		bht:     history.NewPerAddress(bhtBits, localK),
		pht:     counter.NewTable(1<<phtBits, ctrBits),
		phtBits: phtBits,
		localK:  localK,
		addrSel: phtBits - localK,
	}, nil
}

func (p *PAs) index(addr uint64) uint64 {
	local := p.bht.Bits(addr)
	a := addr & (uint64(1)<<p.addrSel - 1)
	return (local << p.addrSel) | a
}

// Predict implements Predictor. The global history argument is unused;
// PAs is a per-address scheme.
func (p *PAs) Predict(addr, _ uint64) bool {
	return p.pht.Predict(p.index(addr))
}

// Update implements Predictor: trains the counter, then shifts the
// branch's local history.
func (p *PAs) Update(addr, _ uint64, taken bool) {
	p.pht.Update(p.index(addr), taken)
	p.bht.Shift(addr, taken)
}

// Name implements Predictor.
func (p *PAs) Name() string { return "pas" }

// HistoryBits implements Predictor. PAs consumes no global history.
func (p *PAs) HistoryBits() uint { return 0 }

// LocalHistoryBits returns the per-branch history length.
func (p *PAs) LocalHistoryBits() uint { return p.localK }

// StorageBits implements Predictor: PHT counters plus BHT registers.
func (p *PAs) StorageBits() int {
	return p.pht.StorageBits() + p.bht.Tables()*int(p.localK)
}

// Reset implements Predictor.
func (p *PAs) Reset() {
	p.pht.Reset()
	p.bht.Reset()
}

// String describes the configuration.
func (p *PAs) String() string {
	return fmt.Sprintf("%s-pas(bht%d,l%d,%dbit)",
		fmtEntries(p.pht.Len()), p.bht.Tables(), p.localK, p.pht.Bits())
}

// SkewedPAs applies the paper's skewing technique to the second level
// of a per-address scheme: three PHT banks indexed by f0/f1/f2 of the
// (address, local history) vector, majority-voted, partial update —
// the future-work experiment of section 7.
type SkewedPAs struct {
	bht    *history.PerAddress
	banks  []*counter.Table
	skew   *skewfn.Skewer
	localK uint
	policy UpdatePolicy

	idx   []uint64
	preds []bool
}

// newSkewedPAs is the skewed-PAs implementation behind Spec.New.
func newSkewedPAs(bhtBits, localK, bankBits, ctrBits uint, policy UpdatePolicy) (*SkewedPAs, error) {
	if bankBits < skewfn.MinBits || bankBits > skewfn.MaxBits {
		return nil, fmt.Errorf("predictor: bank index width %d out of range", bankBits)
	}
	if ctrBits == 0 {
		ctrBits = 2
	}
	s := &SkewedPAs{
		bht:    history.NewPerAddress(bhtBits, localK),
		skew:   skewfn.New(bankBits),
		localK: localK,
		policy: policy,
		idx:    make([]uint64, 3),
		preds:  make([]bool, 3),
	}
	for i := 0; i < 3; i++ {
		s.banks = append(s.banks, counter.NewTable(1<<bankBits, ctrBits))
	}
	return s, nil
}

func (s *SkewedPAs) indices(addr uint64) {
	v := indexfn.Vector(addr, s.bht.Bits(addr), s.localK)
	s.skew.Indices(s.idx, v)
}

func (s *SkewedPAs) vote() bool {
	ayes := 0
	for k, bank := range s.banks {
		p := bank.Predict(s.idx[k])
		s.preds[k] = p
		if p {
			ayes++
		}
	}
	return ayes >= 2
}

// Predict implements Predictor (global history unused).
func (s *SkewedPAs) Predict(addr, _ uint64) bool {
	s.indices(addr)
	return s.vote()
}

// Update implements Predictor.
func (s *SkewedPAs) Update(addr, _ uint64, taken bool) {
	s.indices(addr)
	overall := s.vote()
	for k, bank := range s.banks {
		if s.policy == PartialUpdate && overall == taken && s.preds[k] != taken {
			continue
		}
		bank.Update(s.idx[k], taken)
	}
	s.bht.Shift(addr, taken)
}

// Name implements Predictor.
func (s *SkewedPAs) Name() string { return "skewed-pas" }

// HistoryBits implements Predictor (no global history).
func (s *SkewedPAs) HistoryBits() uint { return 0 }

// StorageBits implements Predictor.
func (s *SkewedPAs) StorageBits() int {
	total := s.bht.Tables() * int(s.localK)
	for _, b := range s.banks {
		total += b.StorageBits()
	}
	return total
}

// Reset implements Predictor.
func (s *SkewedPAs) Reset() {
	for _, b := range s.banks {
		b.Reset()
	}
	s.bht.Reset()
}

// String describes the configuration.
func (s *SkewedPAs) String() string {
	return fmt.Sprintf("3x%s-skewed-pas(bht%d,l%d,%dbit,%s)",
		fmtEntries(s.banks[0].Len()), s.bht.Tables(), s.localK, s.banks[0].Bits(), s.policy)
}
