package predictor

import (
	"fmt"

	"gskew/internal/counter"
	"gskew/internal/indexfn"
)

// Single is a direct-mapped, tag-less, one-bank predictor table — the
// standard organisation of gshare, gselect and bimodal. The index
// function determines which scheme it implements.
type Single struct {
	fn    indexfn.Func
	table *counter.Table

	// Last computed index, memoised across the Predict/Update pair the
	// simulation runner issues per branch. The index is a pure function
	// of (addr, hist), so the cache never goes stale.
	lastAddr, lastHist, lastIdx uint64
	idxOK                       bool
}

// NewSingle returns a one-bank predictor over the given index function
// with 2^fn.Bits() counters of the given width.
func NewSingle(fn indexfn.Func, counterBits uint) *Single {
	return &Single{
		fn:    fn,
		table: counter.NewTable(1<<fn.Bits(), counterBits),
	}
}

// index returns fn.Index(addr, hist), reusing the memoised value when
// the reference repeats (the Predict-then-Update pattern of the
// runner).
func (s *Single) index(addr, hist uint64) uint64 {
	if s.idxOK && s.lastAddr == addr && s.lastHist == hist {
		return s.lastIdx
	}
	s.lastAddr, s.lastHist = addr, hist
	s.lastIdx = s.fn.Index(addr, hist)
	s.idxOK = true
	return s.lastIdx
}

// Predict implements Predictor.
func (s *Single) Predict(addr, hist uint64) bool {
	return s.table.Predict(s.index(addr, hist))
}

// Update implements Predictor.
func (s *Single) Update(addr, hist uint64, taken bool) {
	s.table.Update(s.index(addr, hist), taken)
}

// Step implements Stepper: one index computation serves both the
// prediction and the training.
func (s *Single) Step(addr, hist uint64, taken bool) bool {
	idx := s.fn.Index(addr, hist)
	pred := s.table.Predict(idx)
	s.table.Update(idx, taken)
	return pred
}

// Name implements Predictor.
func (s *Single) Name() string { return s.fn.Name() }

// HistoryBits implements Predictor.
func (s *Single) HistoryBits() uint { return s.fn.HistoryBits() }

// StorageBits implements Predictor.
func (s *Single) StorageBits() int { return s.table.StorageBits() }

// Reset implements Predictor.
func (s *Single) Reset() { s.table.Reset() }

// Entries returns the table size in entries.
func (s *Single) Entries() int { return s.table.Len() }

// IndexFn exposes the index function; the compiled kernel layer
// inspects it to lower the predictor into a monomorphized step loop.
func (s *Single) IndexFn() indexfn.Func { return s.fn }

// Table exposes the counter table backing the predictor, for the
// compiled kernel layer (which shares its storage).
func (s *Single) Table() *counter.Table { return s.table }

// String describes the configuration, e.g. "16k-gshare(h12,2bit)".
func (s *Single) String() string {
	return fmt.Sprintf("%s-%s(h%d,%dbit)",
		fmtEntries(s.table.Len()), s.fn.Name(), s.fn.HistoryBits(), s.table.Bits())
}

// fmtEntries renders an entry count the way the paper does: "4k", "16k",
// "256k", or plain digits below 1024.
func fmtEntries(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dk", n/1024)
	}
	return fmt.Sprintf("%d", n)
}
