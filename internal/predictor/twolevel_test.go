package predictor

import (
	"testing"

	"gskew/internal/rng"
)

func TestPAsConfigValidation(t *testing.T) {
	if _, err := (Spec{Family: "pas", BHT: 4, Local: 10, N: 8, Ctr: 2}).New(); err == nil {
		t.Error("local history wider than PHT index accepted")
	}
	if _, err := (Spec{Family: "pas", BHT: 4, Local: 4, N: 0, Ctr: 2}).New(); err == nil {
		t.Error("zero PHT width accepted")
	}
	if _, err := (Spec{Family: "pas", BHT: 4, Local: 4, N: 27, Ctr: 2}).New(); err == nil {
		t.Error("oversized PHT width accepted")
	}
	if _, err := (Spec{Family: "pas", BHT: 4, Local: 4, N: 10, Ctr: 0}).New(); err != nil {
		t.Error("default counter bits rejected")
	}
}

func TestPAsLearnsLocalPattern(t *testing.T) {
	// A branch with a strict period-2 local pattern (T,N,T,N,...) is
	// perfectly predictable from its own history, regardless of global
	// history — the defining strength of per-address schemes.
	p := MustSpec(Spec{Family: "pas", BHT: 6, Local: 4, N: 10, Ctr: 2})
	misses := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		// Pass varying garbage as global history: PAs must ignore it.
		if p.Predict(0x40, uint64(i*2654435761)) != taken && i > 100 {
			misses++
		}
		p.Update(0x40, uint64(i), taken)
	}
	if misses > 0 {
		t.Errorf("PAs failed to lock onto a period-2 local pattern: %d misses", misses)
	}
}

func TestPAsSeparatesBranches(t *testing.T) {
	p := MustSpec(Spec{Family: "pas", BHT: 6, Local: 4, N: 12, Ctr: 2})
	for i := 0; i < 200; i++ {
		p.Update(1, 0, true)
		p.Update(2, 0, false)
	}
	if !p.Predict(1, 0) || p.Predict(2, 0) {
		t.Error("PAs mixed two branches with distinct addresses")
	}
}

func TestPAsMetadata(t *testing.T) {
	p := MustSpec(Spec{Family: "pas", BHT: 6, Local: 4, N: 12, Ctr: 2}).(*PAs)
	if p.Name() != "pas" || p.HistoryBits() != 0 || p.LocalHistoryBits() != 4 {
		t.Error("metadata wrong")
	}
	// Storage: 2^12 x 2 counter bits + 2^6 x 4 history bits.
	if got := p.StorageBits(); got != 1<<12*2+64*4 {
		t.Errorf("StorageBits = %d", got)
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestPAsReset(t *testing.T) {
	p := MustSpec(Spec{Family: "pas", BHT: 4, Local: 2, N: 8, Ctr: 2})
	for i := 0; i < 10; i++ {
		p.Update(3, 0, false)
	}
	p.Reset()
	if !p.Predict(3, 0) {
		t.Error("Reset did not restore weakly-taken")
	}
}

func TestSkewedPAsLearns(t *testing.T) {
	s := MustSpec(Spec{Family: "skewed-pas", BHT: 6, Local: 6, N: 8, Ctr: 2, Policy: PartialUpdate}).(*SkewedPAs)
	for i := 0; i < 100; i++ {
		s.Update(0x77, 0, false)
	}
	if s.Predict(0x77, 0) {
		t.Error("skewed PAs did not learn not-taken")
	}
	if s.Name() != "skewed-pas" || s.HistoryBits() != 0 {
		t.Error("metadata wrong")
	}
	if s.String() == "" {
		t.Error("String empty")
	}
}

func TestSkewedPAsStorage(t *testing.T) {
	s := MustSpec(Spec{Family: "skewed-pas", BHT: 6, Local: 4, N: 10, Ctr: 2, Policy: PartialUpdate})
	// 3 banks x 2^10 x 2 bits + 2^6 x 4 bits.
	if got := s.StorageBits(); got != 3*1024*2+64*4 {
		t.Errorf("StorageBits = %d", got)
	}
}

func TestSkewedPAsConfigValidation(t *testing.T) {
	if _, err := (Spec{Family: "skewed-pas", BHT: 4, Local: 4, N: 1, Ctr: 2, Policy: PartialUpdate}).New(); err == nil {
		t.Error("undersized bank width accepted")
	}
	if _, err := (Spec{Family: "skewed-pas", BHT: 4, Local: 4, N: 31, Ctr: 2, Policy: PartialUpdate}).New(); err == nil {
		t.Error("oversized bank width accepted")
	}
}

func TestSkewedPAsUnderAliasingPressure(t *testing.T) {
	// Statistical sanity under a large random site population. Note
	// that per-address schemes alias GENTLY by construction: a site's
	// stable local history acts as a partial tag, so colliding sites
	// usually share a direction (constructive aliasing) and a plain
	// PAs is hard to beat on a population of stably-biased branches.
	// The test therefore only pins reasonable behaviour: the skewed
	// variant must stay in the same accuracy regime as the plain PHT
	// and far below chance.
	r := rng.NewXoshiro256(9)
	plain := MustSpec(Spec{Family: "pas", BHT: 8, Local: 6, N: 8, Ctr: 2})                                // 256-entry PHT
	skewed := MustSpec(Spec{Family: "skewed-pas", BHT: 8, Local: 6, N: 8, Ctr: 2, Policy: PartialUpdate}) // 3 x 256
	type site struct {
		addr uint64
		p    float64
	}
	sites := make([]site, 300)
	for i := range sites {
		bias := 0.9
		if r.Bool(0.5) {
			bias = 0.1
		}
		sites[i] = site{addr: r.Uint64n(1 << 16), p: bias}
	}
	missPlain, missSkewed := 0, 0
	const steps = 60000
	for step := 0; step < steps; step++ {
		s := sites[r.Intn(len(sites))]
		taken := r.Bool(s.p)
		if plain.Predict(s.addr, 0) != taken {
			missPlain++
		}
		if skewed.Predict(s.addr, 0) != taken {
			missSkewed++
		}
		plain.Update(s.addr, 0, taken)
		skewed.Update(s.addr, 0, taken)
	}
	if float64(missSkewed) > 2*float64(missPlain) {
		t.Errorf("skewed PAs (%d misses) far outside plain PAs regime (%d)", missSkewed, missPlain)
	}
	if missSkewed > steps*45/100 {
		t.Errorf("skewed PAs miss rate %.1f%% approaches chance", 100*float64(missSkewed)/steps)
	}
}

func TestSkewedPAsReset(t *testing.T) {
	s := MustSpec(Spec{Family: "skewed-pas", BHT: 4, Local: 2, N: 8, Ctr: 2, Policy: TotalUpdate})
	for i := 0; i < 10; i++ {
		s.Update(5, 0, false)
	}
	s.Reset()
	if !s.Predict(5, 0) {
		t.Error("Reset incomplete")
	}
}

func BenchmarkPAs(b *testing.B) {
	p := MustSpec(Spec{Family: "pas", BHT: 10, Local: 8, N: 14, Ctr: 2})
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&(1<<12-1)]
		taken := p.Predict(a, 0)
		p.Update(a, 0, taken)
	}
}

func BenchmarkSkewedPAs(b *testing.B) {
	p := MustSpec(Spec{Family: "skewed-pas", BHT: 10, Local: 8, N: 12, Ctr: 2, Policy: PartialUpdate})
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&(1<<12-1)]
		taken := p.Predict(a, 0)
		p.Update(a, 0, taken)
	}
}
