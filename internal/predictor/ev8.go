package predictor

import (
	"fmt"

	"gskew/internal/counter"
	"gskew/internal/indexfn"
	"gskew/internal/skewfn"
)

// TwoBcGSkew is the 2Bc-gskew hybrid — the direct industrial
// descendant of this paper's predictor, designed for the Alpha EV8
// (Seznec, Felix, Krishnan, Sazeides, "Design Tradeoffs for the Alpha
// EV8 Conditional Branch Predictor", ISCA 2002). Four tag-less tables:
//
//   - BIM:  a bimodal (address-indexed) table;
//   - G0, G1: two history-indexed banks with skewed index functions
//     (G1 uses a longer history than G0);
//   - META: an address+history-indexed chooser.
//
// The e-gskew majority vote over {BIM, G0, G1} handles correlated
// branches; META selects between that vote and BIM alone, so branches
// that history only hurts fall back to the bimodal table. Partial
// update keeps dissenting tables serving their own substreams.
//
// This implementation follows the published update rules at the
// granularity this repository models (single predictions, no fetch
// blocks or banking constraints).
type TwoBcGSkew struct {
	bim, g0, g1, meta *counter.Table
	skew              *skewfn.Skewer
	mask              uint64
	histG0            uint
	histG1            uint

	// Memoised read state across the Predict/Update pair the runner
	// issues per branch; invalidated whenever a table changes.
	lastAddr, lastHist uint64
	last               ev8State
	lastOK             bool
}

// newTwoBcGSkew is the 2Bc-gskew implementation behind Spec.New.
func newTwoBcGSkew(n, histShort, histLong uint) (*TwoBcGSkew, error) {
	if n < skewfn.MinBits || n > skewfn.MaxBits {
		return nil, fmt.Errorf("predictor: table index width %d out of range", n)
	}
	if histShort > 30 || histLong > 30 {
		return nil, fmt.Errorf("predictor: history lengths (%d, %d) out of range [0,30]", histShort, histLong)
	}
	return &TwoBcGSkew{
		bim:    counter.NewTable(1<<n, 2),
		g0:     counter.NewTable(1<<n, 2),
		g1:     counter.NewTable(1<<n, 2),
		meta:   counter.NewTable(1<<n, 2),
		skew:   skewfn.New(n),
		mask:   uint64(1)<<n - 1,
		histG0: histShort,
		histG1: histLong,
	}, nil
}

type ev8State struct {
	iBim, iG0, iG1, iMeta uint64
	bim, g0, g1           bool // per-table predictions
	majority              bool
	useMajority           bool
	overall               bool
}

func (t *TwoBcGSkew) read(addr, hist uint64) ev8State {
	var s ev8State
	s.iBim = addr & t.mask
	s.iG0 = t.skew.F1(indexfn.Vector(addr, hist, t.histG0))
	s.iG1 = t.skew.F2(indexfn.Vector(addr, hist, t.histG1))
	s.iMeta = t.skew.F0(indexfn.Vector(addr, hist, t.histG0))
	s.bim = t.bim.Predict(s.iBim)
	s.g0 = t.g0.Predict(s.iG0)
	s.g1 = t.g1.Predict(s.iG1)
	votes := 0
	for _, v := range []bool{s.bim, s.g0, s.g1} {
		if v {
			votes++
		}
	}
	s.majority = votes >= 2
	s.useMajority = t.meta.Predict(s.iMeta)
	if s.useMajority {
		s.overall = s.majority
	} else {
		s.overall = s.bim
	}
	return s
}

// readCached memoises read across the Predict/Update pair.
func (t *TwoBcGSkew) readCached(addr, hist uint64) ev8State {
	if t.lastOK && t.lastAddr == addr && t.lastHist == hist {
		return t.last
	}
	t.last = t.read(addr, hist)
	t.lastAddr, t.lastHist, t.lastOK = addr, hist, true
	return t.last
}

// Predict implements Predictor.
func (t *TwoBcGSkew) Predict(addr, hist uint64) bool {
	return t.readCached(addr, hist).overall
}

// Update implements Predictor, following the EV8 partial-update
// discipline:
//
//   - overall correct, majority in use: strengthen only the agreeing
//     tables among {BIM, G0, G1};
//   - overall correct, bimodal in use: update BIM alone;
//   - overall wrong: train all three direction tables;
//   - META trains whenever the two strategies would have differed in
//     correctness, toward the one that was right.
func (t *TwoBcGSkew) Update(addr, hist uint64, taken bool) {
	s := t.readCached(addr, hist)
	t.train(s, taken)
}

// Step implements Stepper: one table read phase serves prediction and
// training.
func (t *TwoBcGSkew) Step(addr, hist uint64, taken bool) bool {
	s := t.readCached(addr, hist)
	t.train(s, taken)
	return s.overall
}

// train applies the EV8 partial-update discipline to a read state.
func (t *TwoBcGSkew) train(s ev8State, taken bool) {
	t.lastOK = false // table state changes below
	if s.overall == taken {
		if s.useMajority {
			if s.bim == taken {
				t.bim.Update(s.iBim, taken)
			}
			if s.g0 == taken {
				t.g0.Update(s.iG0, taken)
			}
			if s.g1 == taken {
				t.g1.Update(s.iG1, taken)
			}
		} else {
			t.bim.Update(s.iBim, taken)
		}
	} else {
		t.bim.Update(s.iBim, taken)
		t.g0.Update(s.iG0, taken)
		t.g1.Update(s.iG1, taken)
	}
	if (s.majority == taken) != (s.bim == taken) {
		t.meta.Update(s.iMeta, s.majority == taken)
	}
}

// Name implements Predictor.
func (t *TwoBcGSkew) Name() string { return "2bcgskew" }

// HistoryBits implements Predictor: the longest history consumed.
func (t *TwoBcGSkew) HistoryBits() uint { return t.histG1 }

// StorageBits implements Predictor.
func (t *TwoBcGSkew) StorageBits() int {
	return t.bim.StorageBits() + t.g0.StorageBits() + t.g1.StorageBits() + t.meta.StorageBits()
}

// Reset implements Predictor.
func (t *TwoBcGSkew) Reset() {
	t.bim.Reset()
	t.g0.Reset()
	t.g1.Reset()
	t.meta.Reset()
	t.lastOK = false
}

// IndexBits returns the per-table index width n (2^n entries each).
func (t *TwoBcGSkew) IndexBits() uint { return t.skew.Bits() }

// HistLengths returns the short (G0/META) and long (G1) history
// lengths.
func (t *TwoBcGSkew) HistLengths() (short, long uint) { return t.histG0, t.histG1 }

// Tables exposes the four counter tables, for the compiled kernel
// layer (which shares their storage).
func (t *TwoBcGSkew) Tables() (bim, g0, g1, meta *counter.Table) {
	return t.bim, t.g0, t.g1, t.meta
}

// InvalidateMemo implements MemoInvalidator: it drops the memoised
// read state, which goes stale when the tables are trained without
// going through Update (i.e. by a compiled kernel).
func (t *TwoBcGSkew) InvalidateMemo() { t.lastOK = false }

// String describes the configuration.
func (t *TwoBcGSkew) String() string {
	return fmt.Sprintf("4x%s-2bcgskew(h%d/h%d)", fmtEntries(t.bim.Len()), t.histG0, t.histG1)
}
