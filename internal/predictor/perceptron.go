package predictor

import "fmt"

// This file implements the hashed perceptron predictor (Jiménez &
// Lin's perceptron predictor in the table-hashed form of Tarjan &
// Skadron, "Merging path and gshare indexing in perceptron branch
// prediction"): instead of one weight per history bit, T small tables
// of signed weights are each indexed by the branch address hashed with
// a folded slice of the global history, and the prediction is the
// sign of the summed weights.
//
// Against the paper's aliasing taxonomy the perceptron is the linear
// counterpoint to TAGE's tagging: two branches colliding in one weight
// table merely perturb one addend of the dot product, so conflict
// aliasing degrades the margin instead of flipping the prediction
// outright.
//
// Structure:
//
//   - table 0 is the bias table, indexed by address alone;
//   - table i (1 <= i < T) sees the most recent L_i history bits,
//     L_i = ceil(k*i/(T-1)) (integer arithmetic; table T-1 sees all k),
//     folded to the index width by FoldHistory;
//   - prediction: sum of the T selected weights >= 0 predicts taken;
//   - training (on a mispredict, or whenever |sum| <= theta): every
//     selected weight moves one step toward the outcome, saturating at
//     the ctr-bit two's-complement range [-2^(ctr-1), 2^(ctr-1)-1].
//
// Like TAGE, the perceptron is not a counter automaton over GF(2)
// indices (the prediction thresholds a sum, training is gated on the
// margin), so it has no compiled kernel form and runs on the
// generic/Stepper simulator paths.

// perceptronMaxTables bounds the table count; resolve uses fixed-size
// scratch so a prediction allocates nothing.
const perceptronMaxTables = 16

// Perceptron is the hashed perceptron predictor.
type Perceptron struct {
	n          uint   // index width: 2^n weights per table
	k          uint   // longest history length
	wBits      uint   // weight width in bits (two's complement)
	theta      int    // training threshold
	lens       []uint // lens[i] is table i's history length (lens[0] = 0)
	w          [][]int16
	wMin, wMax int16
	// thetaFlip is false in a correct predictor; the selftest fault
	// TamperPerceptronTraining inverts the margin comparison.
	thetaFlip bool
}

// newPerceptron is the implementation behind Spec.New.
func newPerceptron(n, k uint, tables int, theta int, wBits uint) (*Perceptron, error) {
	if n < 1 || n > 26 {
		return nil, fmt.Errorf("predictor: perceptron index width %d out of range [1,26]", n)
	}
	if k > 30 {
		return nil, fmt.Errorf("predictor: history length %d out of range [0,30]", k)
	}
	if tables < 2 || tables > perceptronMaxTables {
		return nil, fmt.Errorf("predictor: perceptron table count %d out of range [2,%d]", tables, perceptronMaxTables)
	}
	if theta < 0 || theta > 1<<20 {
		return nil, fmt.Errorf("predictor: perceptron theta %d out of range [0,%d]", theta, 1<<20)
	}
	p := &Perceptron{
		n: n, k: k, wBits: wBits, theta: theta,
		wMin: -(int16(1) << (wBits - 1)),
		wMax: int16(1)<<(wBits-1) - 1,
	}
	for i := 0; i < tables; i++ {
		// L_i = ceil(k*i/(T-1)): table 0 is the bias table, table T-1
		// sees the full history.
		l := (k*uint(i) + uint(tables) - 2) / uint(tables-1)
		p.lens = append(p.lens, l)
		p.w = append(p.w, make([]int16, 1<<n))
	}
	return p, nil
}

// index returns table i's weight index: the address (spread per
// table) XORed with the folded history slice.
func (p *Perceptron) index(addr, hist uint64, i int) uint64 {
	f := FoldHistory(hist, p.lens[i], p.n)
	return (addr ^ addr>>uint(i+1) ^ f) & (uint64(1)<<p.n - 1)
}

// perceptronRef is the resolved per-reference picture: the selected
// weight indices, the dot-product sum and the prediction.
type perceptronRef struct {
	idx   [perceptronMaxTables]uint64
	sum   int
	final bool
}

// resolve computes the prediction picture without mutating state.
func (p *Perceptron) resolve(addr, hist uint64) perceptronRef {
	var r perceptronRef
	for i := range p.w {
		r.idx[i] = p.index(addr, hist, i)
		r.sum += int(p.w[i][r.idx[i]])
	}
	r.final = r.sum >= 0
	return r
}

// Predict implements Predictor: the sign of the summed weights.
// Predict does not change state.
func (p *Perceptron) Predict(addr, hist uint64) bool {
	return p.resolve(addr, hist).final
}

// Update implements Predictor: threshold training over every selected
// weight.
func (p *Perceptron) Update(addr, hist uint64, taken bool) {
	r := p.resolve(addr, hist)
	p.train(r, taken)
}

// Step implements Stepper: one resolution serves both the prediction
// and the training.
func (p *Perceptron) Step(addr, hist uint64, taken bool) bool {
	r := p.resolve(addr, hist)
	p.train(r, taken)
	return r.final
}

func (p *Perceptron) train(r perceptronRef, taken bool) {
	mag := r.sum
	if mag < 0 {
		mag = -mag
	}
	within := mag <= p.theta
	if p.thetaFlip {
		within = mag >= p.theta
	}
	if r.final != taken || within {
		for i := range p.w {
			w := p.w[i][r.idx[i]]
			if taken {
				if w < p.wMax {
					p.w[i][r.idx[i]] = w + 1
				}
			} else if w > p.wMin {
				p.w[i][r.idx[i]] = w - 1
			}
		}
	}
}

// Name implements Predictor.
func (p *Perceptron) Name() string { return "perceptron" }

// HistoryBits implements Predictor.
func (p *Perceptron) HistoryBits() uint { return p.k }

// StorageBits implements Predictor: tables x entries x weight width.
func (p *Perceptron) StorageBits() int {
	return len(p.w) * (1 << p.n) * int(p.wBits)
}

// Reset implements Predictor: all weights return to zero.
func (p *Perceptron) Reset() {
	for i := range p.w {
		for e := range p.w[i] {
			p.w[i][e] = 0
		}
	}
}

// String describes the configuration.
func (p *Perceptron) String() string {
	return fmt.Sprintf("perceptron(n=%d, k=%d, tables=%d, theta=%d, ctr=%d)",
		p.n, p.k, len(p.w), p.theta, p.wBits)
}

// Spec implements Speccer.
func (p *Perceptron) Spec() Spec {
	return Spec{Family: "perceptron", N: p.n, Hist: p.k,
		Tables: len(p.w), Theta: p.theta, Ctr: p.wBits}.Normalize()
}

// TamperPerceptronTraining flips the sign of p's threshold-training
// margin comparison (train when |sum| >= theta instead of <= theta),
// for the differential harness's fault-injection selftest. It reports
// whether p is a perceptron the fault applies to.
func TamperPerceptronTraining(p Predictor) bool {
	pp, ok := p.(*Perceptron)
	if !ok {
		return false
	}
	pp.thetaFlip = true
	return true
}
