package predictor

import "testing"

// TestTAGELearnsLongHistoryPattern: a branch following an aperiodic
// period-9 outcome pattern (5 taken / 4 not, all rotations distinct)
// is nearly 50/50 to a per-address counter, but any 9 consecutive
// outcomes identify the position exactly, so a tagged bank with
// history >= 9 predicts it perfectly. TAGE must converge to
// near-perfect prediction while bimodal stays near the pattern bias.
func TestTAGELearnsLongHistoryPattern(t *testing.T) {
	pattern := []bool{true, true, false, true, false, false, true, false, true}
	tage := MustSpec(Spec{Family: "tage", N: 7, Hist: 16, HistMin: 2, Tables: 4, Tag: 8, Ctr: 3})
	base := MustSpec(Spec{Family: "bimodal", N: 7, Ctr: 2})
	const pc = 0x404
	run := func(p Predictor) (correct, total int) {
		hist := uint64(0)
		mask := uint64(1)<<p.HistoryBits() - 1
		for i := 0; i < 20000; i++ {
			taken := pattern[i%len(pattern)]
			if i > 10000 { // score after warm-up
				if p.Predict(pc, hist&mask) == taken {
					correct++
				}
				total++
			}
			p.Update(pc, hist&mask, taken)
			hist <<= 1
			if taken {
				hist |= 1
			}
		}
		return
	}
	tc, tt := run(tage)
	bc, bt := run(base)
	if rate := float64(tc) / float64(tt); rate < 0.95 {
		t.Errorf("tage accuracy on the period-9 pattern = %.3f, want >= 0.95", rate)
	}
	if rate := float64(bc) / float64(bt); rate > 0.8 {
		t.Errorf("bimodal accuracy %.3f on a pattern it should only track the 5/9 bias of", rate)
	}
}

// TestPerceptronLearnsCorrelatedBranch: outcome equals the outcome 5
// branches ago — a single-bit correlation the perceptron learns as one
// dominant weight.
func TestPerceptronLearnsCorrelatedBranch(t *testing.T) {
	p := MustSpec(Spec{Family: "perceptron", N: 7, Hist: 12, Tables: 4, Theta: 0, Ctr: 8})
	const pc = 0x40
	hist, correct, total := uint64(0), 0, 0
	mask := uint64(1)<<p.HistoryBits() - 1
	rng := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < 12000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		taken := hist>>4&1 == 1
		if i < 64 { // seed the history with noise first
			taken = rng&1 == 1
		}
		if i > 6000 {
			if p.Predict(pc, hist&mask) == taken {
				correct++
			}
			total++
		}
		p.Update(pc, hist&mask, taken)
		hist <<= 1
		if taken {
			hist |= 1
		}
	}
	if rate := float64(correct) / float64(total); rate < 0.97 {
		t.Errorf("perceptron accuracy on h[-5] correlation = %.3f, want >= 0.97", rate)
	}
}

// TestTamperTargetsOnlyOwnFamily: the planted-fault hooks must refuse
// predictors of any other type, so a selftest wiring mistake cannot
// silently "catch" a fault that was never planted.
func TestTamperTargetsOnlyOwnFamily(t *testing.T) {
	if TamperTAGEFold(MustSpec(Spec{Family: "bimodal", N: 6, Ctr: 2})) {
		t.Error("TamperTAGEFold accepted a bimodal")
	}
	if TamperTAGEFold(MustSpec(Spec{Family: "perceptron", N: 6, Hist: 10, Tables: 4, Theta: 0, Ctr: 8})) {
		t.Error("TamperTAGEFold accepted a perceptron")
	}
	if TamperPerceptronTraining(MustSpec(Spec{Family: "tage", N: 6, Hist: 12, HistMin: 2, Tables: 4, Tag: 6, Ctr: 3})) {
		t.Error("TamperPerceptronTraining accepted a tage")
	}
	if !TamperTAGEFold(MustSpec(Spec{Family: "tage", N: 6, Hist: 12, HistMin: 2, Tables: 4, Tag: 6, Ctr: 3})) {
		t.Error("TamperTAGEFold rejected a tage")
	}
	if !TamperPerceptronTraining(MustSpec(Spec{Family: "perceptron", N: 6, Hist: 10, Tables: 4, Theta: 0, Ctr: 8})) {
		t.Error("TamperPerceptronTraining rejected a perceptron")
	}
}

// TestTAGEStorageBits pins the storage accounting the shoot-out's
// matched budgets rely on.
func TestTAGEStorageBits(t *testing.T) {
	// 2^9 base 2-bit counters + 4 banks x 2^9 x (tag 8 + ctr 3 + u 2).
	if got, want := MustSpec(Spec{Family: "tage", N: 9, Hist: 20, HistMin: 4, Tables: 4, Tag: 8, Ctr: 3}).StorageBits(), 1<<9*2+4*(1<<9)*(8+3+2); got != want {
		t.Errorf("tage storage %d bits, want %d", got, want)
	}
	// 8 tables x 2^9 x 8-bit weights.
	if got, want := MustSpec(Spec{Family: "perceptron", N: 9, Hist: 16, Tables: 8, Theta: 0, Ctr: 8}).StorageBits(), 8*(1<<9)*8; got != want {
		t.Errorf("perceptron storage %d bits, want %d", got, want)
	}
}
