package predictor

import (
	"strings"
	"testing"

	"gskew/internal/rng"
)

func TestHybridValidation(t *testing.T) {
	a, b := MustSpec(Spec{Family: "bimodal", N: 8, Ctr: 2}), MustSpec(Spec{Family: "gshare", N: 8, Hist: 6, Ctr: 2})
	if _, err := NewHybrid(a, b, 0); err == nil {
		t.Error("zero chooser width accepted")
	}
	if _, err := NewHybrid(a, b, 27); err == nil {
		t.Error("oversized chooser width accepted")
	}
}

func TestHybridMetadata(t *testing.T) {
	a, b := MustSpec(Spec{Family: "bimodal", N: 8, Ctr: 2}), MustSpec(Spec{Family: "gshare", N: 10, Hist: 6, Ctr: 2})
	h := MustHybrid(a, b, 8)
	if h.HistoryBits() != 6 {
		t.Errorf("HistoryBits = %d, want max of components", h.HistoryBits())
	}
	// bimodal 256x2 + gshare 1024x2 + chooser 256x2 bits.
	if got := h.StorageBits(); got != 512+2048+512 {
		t.Errorf("StorageBits = %d", got)
	}
	if !strings.Contains(h.Name(), "bimodal") || !strings.Contains(h.Name(), "gshare") {
		t.Errorf("Name = %q", h.Name())
	}
	ca, cb := h.Components()
	if ca != Predictor(a) || cb != Predictor(b) {
		t.Error("Components mismatch")
	}
	if h.String() == "" {
		t.Error("String empty")
	}
}

func TestHybridSelectsBetterComponent(t *testing.T) {
	// Two branch populations: one purely bias-driven (bimodal wins on
	// it immediately), one purely history-driven (gshare wins). The
	// hybrid must approach the better component on each, so its total
	// misses must be at most either component's alone.
	run := func(p Predictor) int {
		r := rng.NewXoshiro256(3)
		misses := 0
		hist := uint64(0)
		for i := 0; i < 60000; i++ {
			var addr uint64
			var taken bool
			if i%2 == 0 {
				// Biased population: 64 branches, strongly taken.
				addr = 0x1000 + r.Uint64n(64)
				taken = r.Bool(0.98)
			} else {
				// History-parity population.
				addr = 0x2000 + r.Uint64n(8)
				taken = (hist&1)^(hist>>2&1) == 1
			}
			if p.Predict(addr, hist) != taken {
				misses++
			}
			p.Update(addr, hist, taken)
			hist = hist<<1 | map[bool]uint64{true: 1}[taken]
		}
		return misses
	}
	bimodalMisses := run(MustSpec(Spec{Family: "bimodal", N: 10, Ctr: 2}))
	gshareMisses := run(MustSpec(Spec{Family: "gshare", N: 10, Hist: 8, Ctr: 2}))
	hybridMisses := run(MustHybrid(MustSpec(Spec{Family: "bimodal", N: 10, Ctr: 2}), MustSpec(Spec{Family: "gshare", N: 10, Hist: 8, Ctr: 2}), 10))
	min := bimodalMisses
	if gshareMisses < min {
		min = gshareMisses
	}
	// The hybrid pays a small learning cost for the chooser but must
	// be within 10% of the better component.
	if float64(hybridMisses) > float64(min)*1.10 {
		t.Errorf("hybrid misses %d not within 10%% of best component (bimodal %d, gshare %d)",
			hybridMisses, bimodalMisses, gshareMisses)
	}
}

func TestHybridChooserConvergence(t *testing.T) {
	// When component A is always wrong and B always right, the hybrid
	// must converge to B's prediction within a few updates.
	a := MustSpec(Spec{Family: "bimodal", N: 4, Ctr: 2}) // will be trained toward taken
	b := MustSpec(Spec{Family: "gshare", N: 4, Hist: 2, Ctr: 2})
	h := MustHybrid(a, b, 4)
	// Train stream: branch 5 is never taken. Bimodal and gshare both
	// learn this; force disagreement by pre-training A.
	for i := 0; i < 8; i++ {
		a.Update(5, 0, true) // poison A toward taken
	}
	for i := 0; i < 20; i++ {
		h.Update(5, 0, false)
	}
	if h.Predict(5, 0) {
		t.Error("hybrid did not converge to the correct component")
	}
}

func TestHybridReset(t *testing.T) {
	h := MustHybrid(MustSpec(Spec{Family: "bimodal", N: 6, Ctr: 2}), MustSpec(Spec{Family: "gshare", N: 6, Hist: 4, Ctr: 2}), 6)
	for i := 0; i < 10; i++ {
		h.Update(9, 3, false)
	}
	h.Reset()
	if !h.Predict(9, 3) {
		t.Error("Reset did not restore defaults")
	}
}

func BenchmarkHybrid(b *testing.B) {
	h := MustHybrid(MustSpec(Spec{Family: "bimodal", N: 12, Ctr: 2}), MustSpec(Spec{Family: "gshare", N: 14, Hist: 12, Ctr: 2}), 12)
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&(1<<12-1)]
		taken := h.Predict(a, uint64(i))
		h.Update(a, uint64(i), taken)
	}
}
