package predictor

import (
	"strings"
	"testing"

	"gskew/internal/rng"
)

func TestTwoBcGSkewValidation(t *testing.T) {
	if _, err := (Spec{Family: "2bcgskew", N: 1, HistShort: 4, Hist: 8}).New(); err == nil {
		t.Error("undersized table width accepted")
	}
	if _, err := (Spec{Family: "2bcgskew", N: 31, HistShort: 4, Hist: 8}).New(); err == nil {
		t.Error("oversized table width accepted")
	}
	if _, err := (Spec{Family: "2bcgskew", N: 10, HistShort: 31, Hist: 8}).New(); err == nil {
		t.Error("oversized history accepted")
	}
}

func TestTwoBcGSkewLearns(t *testing.T) {
	p := MustSpec(Spec{Family: "2bcgskew", N: 10, HistShort: 4, Hist: 12})
	train(p, 0x42, 0x3a5, false, 8)
	if p.Predict(0x42, 0x3a5) {
		t.Error("did not learn not-taken")
	}
	train(p, 0x42, 0x3a5, true, 12)
	if !p.Predict(0x42, 0x3a5) {
		t.Error("did not relearn taken")
	}
}

func TestTwoBcGSkewMetadata(t *testing.T) {
	p := MustSpec(Spec{Family: "2bcgskew", N: 12, HistShort: 6, Hist: 14}).(*TwoBcGSkew)
	if p.Name() != "2bcgskew" || p.HistoryBits() != 14 {
		t.Error("metadata wrong")
	}
	if got := p.StorageBits(); got != 4*(1<<12)*2 {
		t.Errorf("StorageBits = %d", got)
	}
	if !strings.Contains(p.String(), "2bcgskew") {
		t.Errorf("String = %q", p.String())
	}
	train(p, 7, 1, false, 6)
	p.Reset()
	if !p.Predict(7, 1) {
		t.Error("Reset incomplete")
	}
}

func TestTwoBcGSkewFallsBackToBimodal(t *testing.T) {
	// A branch whose direction is fixed but whose history is pure
	// noise: history-indexed tables see a different (cold or polluted)
	// entry every time, while BIM nails it. The META chooser must
	// learn to trust BIM, keeping accuracy high.
	p := MustSpec(Spec{Family: "2bcgskew", N: 8, HistShort: 6, Hist: 12})
	r := rng.NewXoshiro256(5)
	misses := 0
	const n = 4000
	for i := 0; i < n; i++ {
		hist := r.Uint64() // uncorrelated noise history
		if p.Predict(0x77, hist) != true && i > 500 {
			misses++
		}
		p.Update(0x77, hist, true)
	}
	if rate := float64(misses) / n; rate > 0.02 {
		t.Errorf("fixed-direction branch with noise history missed %.2f%%; META failed to select BIM", 100*rate)
	}
}

func TestTwoBcGSkewUsesHistoryWhenItHelps(t *testing.T) {
	// A history-parity branch that bimodal cannot learn: the majority
	// side must take over and drive the miss rate well below 50%.
	p := MustSpec(Spec{Family: "2bcgskew", N: 10, HistShort: 4, Hist: 10})
	var hist uint64
	misses, counted := 0, 0
	r := rng.NewXoshiro256(9)
	for i := 0; i < 8000; i++ {
		taken := (hist&1)^(hist>>1&1) == 1
		if i > 2000 {
			counted++
			if p.Predict(0x55, hist) != taken {
				misses++
			}
		}
		p.Update(0x55, hist, taken)
		hist = hist<<1 | map[bool]uint64{true: 1}[taken]
		// Interleave an unrelated noisy branch to keep META honest.
		noiseTaken := r.Bool(0.5)
		p.Update(0x9000+r.Uint64n(4), hist, noiseTaken)
		hist = hist<<1 | map[bool]uint64{true: 1}[noiseTaken]
	}
	if rate := float64(misses) / float64(counted); rate > 0.10 {
		t.Errorf("history-parity branch missed %.1f%%; majority path not engaged", 100*rate)
	}
}

func TestTwoBcGSkewInInvariantsHarness(t *testing.T) {
	// Run the shared invariants directly for the EV8 predictor.
	build := func() Predictor { return MustSpec(Spec{Family: "2bcgskew", N: 8, HistShort: 4, Hist: 8}) }
	evs := randomEvents(17, 3000)
	a, b := build(), build()
	for _, e := range evs {
		if a.Predict(e.addr, e.hist) != b.Predict(e.addr, e.hist) {
			t.Fatal("instances diverged")
		}
		p1 := a.Predict(e.addr, e.hist)
		if a.Predict(e.addr, e.hist) != p1 {
			t.Fatal("Predict not pure")
		}
		a.Update(e.addr, e.hist, e.taken)
		b.Update(e.addr, e.hist, e.taken)
	}
}

func BenchmarkTwoBcGSkew(b *testing.B) {
	p := MustSpec(Spec{Family: "2bcgskew", N: 12, HistShort: 8, Hist: 16})
	r := rng.NewXoshiro256(1)
	addrs := make([]uint64, 1<<12)
	for i := range addrs {
		addrs[i] = r.Uint64n(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i&(1<<12-1)]
		taken := p.Predict(a, uint64(i))
		p.Update(a, uint64(i), taken)
	}
}
