package obs

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Cell is the manifest record of one simulation cell: one RunMany
// call (one trace, one or more predictors).
type Cell struct {
	// ID identifies the cell, e.g. "fig5/groff".
	ID string `json:"id"`
	// Predictors are the canonical Spec strings (or String() forms for
	// composite predictors outside the Spec grammar) of the cell's
	// predictors, in run order.
	Predictors []string `json:"predictors"`
	// Conditionals is the shared conditional-branch count of the cell.
	Conditionals int `json:"conditionals,omitempty"`
	// WallMS is the cell's wall-clock time in milliseconds. Per-cell
	// CPU time is not observable per goroutine in Go; the manifest
	// carries process-wide CPU totals instead (Manifest.CPUUserMS).
	WallMS float64 `json:"wall_ms"`
	// Result optionally carries per-predictor scalar results.
	Result any `json:"result,omitempty"`
}

// Manifest describes one tool invocation end to end: what ran, on
// which code, with which parameters, and how long each cell took —
// enough to reproduce the run byte for byte.
type Manifest struct {
	Tool      string    `json:"tool"`
	Args      []string  `json:"args,omitempty"`
	Start     time.Time `json:"start"`
	WallMS    float64   `json:"wall_ms"`
	CPUUserMS float64   `json:"cpu_user_ms,omitempty"`
	CPUSysMS  float64   `json:"cpu_sys_ms,omitempty"`

	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Hostname    string `json:"hostname,omitempty"`

	// Params carries tool-specific knobs (scale, seed, jobs, ...).
	Params map[string]any `json:"params,omitempty"`
	// Cells are the simulation cells the run executed, in completion
	// order.
	Cells []Cell `json:"cells,omitempty"`
	// Metrics is a snapshot of the Default registry at finish time
	// (present only when metric collection was enabled).
	Metrics map[string]any `json:"metrics,omitempty"`

	start time.Time
}

// NewManifest starts a manifest for the named tool, stamping the
// build/version environment now and the timings at Finish.
func NewManifest(tool string, args []string) *Manifest {
	now := time.Now()
	m := &Manifest{
		Tool:      tool,
		Args:      args,
		Start:     now.UTC(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Params:    make(map[string]any),
		start:     now,
	}
	if host, err := os.Hostname(); err == nil {
		m.Hostname = host
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// SetParam records one tool parameter.
func (m *Manifest) SetParam(key string, value any) { m.Params[key] = value }

// AddCell appends one cell record.
func (m *Manifest) AddCell(c Cell) { m.Cells = append(m.Cells, c) }

// Finish stamps wall and process CPU time and, when metric collection
// is enabled, snapshots the Default registry into the manifest.
func (m *Manifest) Finish() {
	m.WallMS = float64(time.Since(m.start)) / float64(time.Millisecond)
	user, sys := cpuTimes()
	m.CPUUserMS = float64(user) / float64(time.Millisecond)
	m.CPUSysMS = float64(sys) / float64(time.Millisecond)
	if Enabled() {
		m.Metrics = Default().Snapshot()
	}
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile finishes the manifest and writes it to path.
func (m *Manifest) WriteFile(path string) error {
	m.Finish()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
