package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Point is one closed interval of a misprediction-rate curve.
type Point struct {
	// Start is the index of the interval's first conditional branch
	// within the run (0-based).
	Start int `json:"start"`
	// Conds is the number of conditional branches in the interval.
	Conds int `json:"conds"`
	// Mispredicts is the number of counted mispredictions among them.
	Mispredicts int `json:"mispredicts"`
	// MissPct is 100 * Mispredicts / Conds, precomputed at close time
	// so curve files are directly plottable.
	MissPct float64 `json:"miss_pct"`
	// Compulsory, Capacity and Conflict carry the three-Cs aliasing
	// decomposition of the interval when the feeder classifies
	// references (cmd/aliasing); they stay zero otherwise.
	Compulsory int `json:"compulsory,omitempty"`
	Capacity   int `json:"capacity,omitempty"`
	Conflict   int `json:"conflict,omitempty"`
}

// Series is the interval curve of one simulation cell (one predictor
// over one trace).
type Series struct {
	// Label identifies the cell, e.g. "fig5/groff/gskewed:n=12,...".
	Label string `json:"label"`
	// Every is the nominal interval length in conditional branches.
	// Feeders that deliver whole blocks close intervals at the first
	// block boundary at or past Every, so actual interval lengths can
	// exceed it by up to one block.
	Every int `json:"every"`
	// Points are the closed intervals in run order.
	Points []Point `json:"points"`
}

// Totals sums the series back to scalar counts. The recorder closes
// intervals without dropping or double-counting branches, so these
// equal the run's Result counters exactly (asserted by tests).
func (s *Series) Totals() (conds, mispredicts int) {
	for _, p := range s.Points {
		conds += p.Conds
		mispredicts += p.Mispredicts
	}
	return conds, mispredicts
}

// Recorder accumulates per-cell interval curves from a simulation run.
// The runner feeds it deltas — Add(cell, conds, mispredicts) once per
// drained block per cell — and the recorder closes an interval
// whenever a cell's accumulated conditionals reach the configured
// length. A Recorder belongs to one run: it is not safe for concurrent
// use (each concurrently running simulation gets its own).
type Recorder struct {
	every int
	cells []*recCell
}

type recCell struct {
	series *Series
	open   Point
	seen   int // conditionals delivered so far (== next interval's Start)
}

// NewRecorder returns a recorder closing intervals every `every`
// conditional branches (must be positive). labels name the cells in
// runner order; cells beyond the labels (or a nil labels) are named by
// index.
func NewRecorder(every int, labels ...string) *Recorder {
	if every <= 0 {
		panic(fmt.Sprintf("obs: interval length %d must be positive", every))
	}
	r := &Recorder{every: every}
	for _, l := range labels {
		r.addCell(l)
	}
	return r
}

func (r *Recorder) addCell(label string) *recCell {
	if label == "" {
		label = fmt.Sprintf("cell%d", len(r.cells))
	}
	c := &recCell{series: &Series{Label: label, Every: r.every}}
	r.cells = append(r.cells, c)
	return c
}

func (r *Recorder) cell(i int) *recCell {
	for len(r.cells) <= i {
		r.addCell("")
	}
	return r.cells[i]
}

// Every returns the nominal interval length.
func (r *Recorder) Every() int { return r.every }

// Add delivers a block's worth of accounting for one cell: conds
// conditional branches of which mispredicts were counted wrong.
func (r *Recorder) Add(cellIdx, conds, mispredicts int) {
	r.AddClassified(cellIdx, conds, mispredicts, 0, 0, 0)
}

// AddClassified is Add carrying a three-Cs aliasing decomposition of
// the block (per-class counts from an active classifier).
func (r *Recorder) AddClassified(cellIdx, conds, mispredicts, compulsory, capacity, conflict int) {
	if conds == 0 && mispredicts == 0 {
		return
	}
	c := r.cell(cellIdx)
	if c.open.Conds == 0 {
		c.open.Start = c.seen
	}
	c.open.Conds += conds
	c.open.Mispredicts += mispredicts
	c.open.Compulsory += compulsory
	c.open.Capacity += capacity
	c.open.Conflict += conflict
	c.seen += conds
	if c.open.Conds >= r.every {
		c.close()
	}
}

// close seals the open interval into the series.
func (c *recCell) close() {
	if c.open.Conds == 0 {
		return
	}
	c.open.MissPct = 100 * float64(c.open.Mispredicts) / float64(c.open.Conds)
	c.series.Points = append(c.series.Points, c.open)
	c.open = Point{}
}

// Flush closes any partial trailing intervals. It is idempotent; call
// it (or Series, which calls it) after the run completes so the tail
// is not lost.
func (r *Recorder) Flush() {
	for _, c := range r.cells {
		c.close()
	}
}

// Series flushes and returns the per-cell curves in cell order.
func (r *Recorder) Series() []*Series {
	r.Flush()
	out := make([]*Series, len(r.cells))
	for i, c := range r.cells {
		out[i] = c.series
	}
	return out
}

// WriteSeriesJSON writes curves as one indented JSON array.
func WriteSeriesJSON(w io.Writer, series []*Series) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(series)
}

// WriteSeriesCSV writes curves as flat CSV, one row per (cell,
// interval), with the label repeated so the file loads directly into
// plotting tools.
func WriteSeriesCSV(w io.Writer, series []*Series) error {
	if _, err := fmt.Fprintln(w, "label,start,conds,mispredicts,miss_pct,compulsory,capacity,conflict"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%.6f,%d,%d,%d\n",
				s.Label, p.Start, p.Conds, p.Mispredicts, p.MissPct,
				p.Compulsory, p.Capacity, p.Conflict); err != nil {
				return err
			}
		}
	}
	return nil
}
