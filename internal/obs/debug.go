package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names and the debug server may be started more than once
// in a process's tests.
var publishOnce sync.Once

// DebugMux returns the debug endpoint mux, for embedding into a larger
// server (the simulation service mounts it next to its API routes).
// Endpoints:
//
//	/metrics       the Default registry as JSON
//	/debug/vars    expvar (cmdline, memstats, and the registry under
//	               the "obs" key)
//	/debug/pprof/  the standard pprof profiles
//
// Building the mux enables metric collection.
func DebugMux() *http.ServeMux {
	Enable()
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return Default().Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		Default().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the opt-in debug endpoint on addr (host:port; port 0
// picks a free one) and returns the bound address. The server runs on
// its own goroutine until the process exits — it exists to observe a
// live run, not to outlive it. It serves the DebugMux endpoints, and
// starting it enables metric collection.
func Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugMux()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
