package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Metrics register in the package-wide Default registry, so tests
// share these instruments rather than re-registering per test.
var (
	testCounter = NewCounter("test.counter")
	testGauge   = NewGauge("test.gauge")
	testHist    = NewHistogram("test.hist", []int64{10, 100, 1000})
)

func TestCounterGatedOnEnable(t *testing.T) {
	Disable()
	testCounter.Add(5)
	if got := testCounter.Value(); got != 0 {
		t.Fatalf("disabled counter advanced to %d", got)
	}
	Enable()
	defer Disable()
	testCounter.Add(5)
	testCounter.Inc()
	if got := testCounter.Value(); got != 6 {
		t.Fatalf("enabled counter = %d, want 6", got)
	}
}

func TestGaugeAndHistogram(t *testing.T) {
	Enable()
	defer Disable()
	testGauge.Set(42)
	if got := testGauge.Value(); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}
	for _, v := range []int64{5, 10, 11, 5000} {
		testHist.Observe(v)
	}
	if got := testHist.Count(); got != 4 {
		t.Fatalf("histogram count = %d, want 4", got)
	}
	if got := testHist.Sum(); got != 5026 {
		t.Fatalf("histogram sum = %d, want 5026", got)
	}
	// v <= bound buckets: {5,10} <= 10; 11 <= 100; none <= 1000; 5000 overflow.
	want := []int64{2, 1, 0, 1}
	got := testHist.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	var sb strings.Builder
	if err := Default().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	for _, name := range []string{"test.counter", "test.gauge", "test.hist"} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("snapshot missing %q: %v", name, snap)
		}
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter("test.counter")
}

func TestRecorderIntervalsAndTotals(t *testing.T) {
	r := NewRecorder(100, "a", "b")
	// Cell 0: blocks of 60 conds — intervals close at block
	// boundaries >= 100, i.e. after 120, 240, ... conds.
	for i := 0; i < 5; i++ {
		r.Add(0, 60, i)
	}
	// Cell 1: per-branch feed — exact 100-cond intervals.
	for i := 0; i < 250; i++ {
		miss := 0
		if i%10 == 0 {
			miss = 1
		}
		r.AddClassified(1, 1, miss, miss, 0, 0)
	}
	series := r.Series()
	if len(series) != 2 {
		t.Fatalf("series count = %d, want 2", len(series))
	}
	a, b := series[0], series[1]
	if a.Label != "a" || b.Label != "b" {
		t.Fatalf("labels = %q, %q", a.Label, b.Label)
	}
	// Cell 0: 300 conds, 0+1+2+3+4 = 10 mispredicts, intervals of
	// 120/120/60 (tail flushed).
	if conds, miss := a.Totals(); conds != 300 || miss != 10 {
		t.Fatalf("cell a totals = (%d, %d), want (300, 10)", conds, miss)
	}
	wantConds := []int{120, 120, 60}
	if len(a.Points) != len(wantConds) {
		t.Fatalf("cell a intervals = %d, want %d", len(a.Points), len(wantConds))
	}
	start := 0
	for i, p := range a.Points {
		if p.Conds != wantConds[i] || p.Start != start {
			t.Fatalf("cell a interval %d = {start %d, conds %d}, want {start %d, conds %d}",
				i, p.Start, p.Conds, start, wantConds[i])
		}
		start += p.Conds
	}
	// Cell 1: 250 conds, 25 mispredicts, intervals 100/100/50, classes
	// accumulate.
	if conds, miss := b.Totals(); conds != 250 || miss != 25 {
		t.Fatalf("cell b totals = (%d, %d), want (250, 25)", conds, miss)
	}
	if len(b.Points) != 3 || b.Points[0].Conds != 100 || b.Points[2].Conds != 50 {
		t.Fatalf("cell b intervals = %+v", b.Points)
	}
	totalCompulsory := 0
	for _, p := range b.Points {
		totalCompulsory += p.Compulsory
	}
	if totalCompulsory != 25 {
		t.Fatalf("cell b compulsory total = %d, want 25", totalCompulsory)
	}
	if got := b.Points[0].MissPct; got != 10 {
		t.Fatalf("cell b interval 0 miss%% = %v, want 10", got)
	}
}

func TestRecorderFlushIdempotent(t *testing.T) {
	r := NewRecorder(10)
	r.Add(0, 4, 1)
	r.Flush()
	r.Flush()
	s := r.Series()
	if len(s) != 1 || len(s[0].Points) != 1 {
		t.Fatalf("series = %+v", s)
	}
	if s[0].Label != "cell0" {
		t.Fatalf("default label = %q", s[0].Label)
	}
}

func TestSeriesWriters(t *testing.T) {
	r := NewRecorder(2, "x")
	r.Add(0, 2, 1)
	r.Add(0, 2, 0)
	series := r.Series()

	var jsonBuf strings.Builder
	if err := WriteSeriesJSON(&jsonBuf, series); err != nil {
		t.Fatal(err)
	}
	var decoded []Series
	if err := json.Unmarshal([]byte(jsonBuf.String()), &decoded); err != nil {
		t.Fatalf("series JSON invalid: %v", err)
	}
	if len(decoded) != 1 || decoded[0].Label != "x" || len(decoded[0].Points) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}

	var csvBuf strings.Builder
	if err := WriteSeriesCSV(&csvBuf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[1], "x,0,2,1,50.000000") {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

func TestManifestLifecycle(t *testing.T) {
	m := NewManifest("testtool", []string{"-flag", "v"})
	m.SetParam("scale", 0.1)
	m.AddCell(Cell{ID: "fig5/groff", Predictors: []string{"gshare:n=14,k=8,ctr=2"}, WallMS: 1.5})
	m.Finish()
	if m.GoVersion == "" || m.GOOS == "" {
		t.Fatalf("environment not stamped: %+v", m)
	}
	if m.WallMS < 0 {
		t.Fatalf("wall time %v", m.WallMS)
	}
	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("manifest JSON invalid: %v", err)
	}
	cells, ok := decoded["cells"].([]any)
	if !ok || len(cells) != 1 {
		t.Fatalf("manifest cells = %v", decoded["cells"])
	}
	if decoded["tool"] != "testtool" {
		t.Fatalf("tool = %v", decoded["tool"])
	}
}

func TestProgressFormat(t *testing.T) {
	var sb strings.Builder
	p := NewProgress(&sb, 3)
	base := time.Now()
	tick := 0
	p.start = base
	p.now = func() time.Time { tick++; return base.Add(time.Duration(tick) * 10 * time.Second) }
	p.Done("fig5", 10*time.Second)
	p.Done("fig6", 10*time.Second)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "[1/3] fig5 10s elapsed 10s eta ") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "[2/3] fig6") || !strings.Contains(lines[1], "eta 10s") {
		t.Fatalf("line 1 = %q", lines[1])
	}
	// Unknown totals render without denominator or eta.
	var sb2 strings.Builder
	q := NewProgress(&sb2, 0)
	q.Done("cell", time.Millisecond)
	if !strings.HasPrefix(sb2.String(), "[1] cell") || strings.Contains(sb2.String(), "eta") {
		t.Fatalf("unknown-total line = %q", sb2.String())
	}
}

func TestDebugServer(t *testing.T) {
	addr, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer Disable() // Serve enables collection
	testCounter.Add(1)
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" && !strings.Contains(string(body), "test.counter") {
			t.Fatalf("/metrics missing registry content: %s", body)
		}
	}
}
