//go:build !linux && !darwin

package obs

import "time"

// cpuTimes is unavailable on this platform; the manifest omits the
// CPU fields.
func cpuTimes() (user, sys time.Duration) { return 0, 0 }
