//go:build linux || darwin

package obs

import (
	"syscall"
	"time"
)

// cpuTimes returns the process's cumulative user and system CPU time.
func cpuTimes() (user, sys time.Duration) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, 0
	}
	toDur := func(tv syscall.Timeval) time.Duration {
		return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
	}
	return toDur(ru.Utime), toDur(ru.Stime)
}
