package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress emits one-line progress reports for a sweep of units
// (experiments or cells) to a writer, typically stderr:
//
//	[7/21] fig7 3.2s elapsed 38s eta 12s
//
// It is safe for concurrent use; units may complete in any order. When
// the total is unknown, pass 0 and the count renders without a
// denominator.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	total int
	done  int
	start time.Time
	now   func() time.Time // test hook
}

// NewProgress returns a reporter writing to w for total units (0 =
// unknown).
func NewProgress(w io.Writer, total int) *Progress {
	return &Progress{w: w, total: total, start: time.Now(), now: time.Now}
}

// Done reports one completed unit, with the unit's own duration.
func (p *Progress) Done(label string, took time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	elapsed := p.now().Sub(p.start)
	counter := fmt.Sprintf("[%d]", p.done)
	if p.total > 0 {
		counter = fmt.Sprintf("[%d/%d]", p.done, p.total)
	}
	line := fmt.Sprintf("%s %s %s elapsed %s", counter, label,
		round(took), round(elapsed))
	if p.total > 0 && p.done < p.total {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		line += " eta " + round(eta)
	}
	fmt.Fprintln(p.w, line)
}

// round trims durations to a display-friendly precision.
func round(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(100 * time.Millisecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
