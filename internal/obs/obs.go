// Package obs is the run-telemetry layer of the simulator: a
// lightweight metric registry (counters, gauges, fixed-bucket
// histograms), an interval recorder that turns scalar end-of-run
// misprediction counts into warmup/steady-state curves, run manifests
// that make every experiment invocation reproducible, progress
// reporting for long sweeps, and an opt-in HTTP debug endpoint
// exposing the registry next to expvar and pprof.
//
// Everything is off by default. Metric mutation methods are gated on a
// package-wide enable flag and perform no allocation either way, so
// instrumented hot paths (the kernel StepBatch block loop) keep their
// AllocsPerRun == 0 gates; a disabled counter costs one atomic load.
// Tools flip the flag with Enable when the user opts in (-debug-addr,
// -manifest, ...).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates every metric mutation. Off by default: a disabled
// Counter.Add is an atomic load and a branch, nothing more.
var enabled atomic.Bool

// Enable turns metric collection on process-wide.
func Enable() { enabled.Store(true) }

// Disable turns metric collection off (used by tests).
func Disable() { enabled.Store(false) }

// Enabled reports whether metric collection is on. Instrumented call
// sites may consult it to skip work (e.g. a time.Now pair) that only
// feeds metrics.
func Enabled() bool { return enabled.Load() }

// Metric is one named instrument in a Registry.
type Metric interface {
	// MetricName returns the registry key, e.g. "sim.steps".
	MetricName() string
	// snapshot renders the current value as a JSON-marshalable map
	// entry value.
	snapshot() any
}

// Registry holds a named set of metrics. The zero value is unusable;
// use NewRegistry or the package-level Default registry. Registration
// takes a lock; reads and mutations of registered metrics are
// lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]Metric
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]Metric)}
}

// defaultRegistry is the process-wide registry the package-level
// constructors register into and the debug endpoint serves.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// register adds m, panicking on duplicate names — metric names are
// compile-time constants, so a collision is a programming error.
func (r *Registry) register(m Metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := m.MetricName()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.metrics[name] = m
	r.order = append(r.order, name)
}

// Each calls fn for every registered metric in name order.
func (r *Registry) Each(fn func(Metric)) {
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	byName := make(map[string]Metric, len(names))
	for _, n := range names {
		byName[n] = r.metrics[n]
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, n := range names {
		fn(byName[n])
	}
}

// Snapshot returns the current value of every metric keyed by name.
// The map is freshly built and safe to retain.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	r.Each(func(m Metric) { out[m.MetricName()] = m.snapshot() })
	return out
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Counter is a monotonically increasing int64. Mutations are atomic
// and allocation-free; they are dropped while the package is disabled.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name string) *Counter {
	c := &Counter{name: name}
	defaultRegistry.register(c)
	return c
}

// Add increments the counter by n when collection is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// MetricName implements Metric.
func (c *Counter) MetricName() string { return c.name }

func (c *Counter) snapshot() any { return c.v.Load() }

// Gauge is a settable int64 level.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge registers a gauge in the Default registry.
func NewGauge(name string) *Gauge {
	g := &Gauge{name: name}
	defaultRegistry.register(g)
	return g
}

// Set stores v when collection is enabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the level by delta when collection is enabled. Intended
// for occupancy-style gauges (queue depth, live sessions) whose
// increments and decrements happen on different goroutines.
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// MetricName implements Metric.
func (g *Gauge) MetricName() string { return g.name }

func (g *Gauge) snapshot() any { return g.v.Load() }

// Histogram counts observations into fixed upper-bound buckets
// (observation v lands in the first bucket with v <= bound; larger
// values land in the implicit overflow bucket). Bounds are fixed at
// construction so Observe is a loop over a small array plus one atomic
// add — no allocation, suitable for per-block hot paths.
type Histogram struct {
	name   string
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// NewHistogram registers a histogram with the given ascending upper
// bounds in the Default registry.
func NewHistogram(name string, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	defaultRegistry.register(h)
	return h
}

// Observe records one value when collection is enabled.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets returns the cumulative-free per-bucket counts; the last
// element is the overflow bucket.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// MetricName implements Metric.
func (h *Histogram) MetricName() string { return h.name }

func (h *Histogram) snapshot() any {
	return map[string]any{
		"count":   h.n.Load(),
		"sum":     h.sum.Load(),
		"bounds":  h.bounds,
		"buckets": h.Buckets(),
	}
}
