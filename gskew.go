// Package gskew is the public API of this repository: a complete Go
// implementation of the skewed branch predictor and the aliasing
// analysis apparatus from Michaud, Seznec and Uhlig, "Trading Conflict
// and Capacity Aliasing in Conditional Branch Predictors" (ISCA 1997).
//
// The package re-exports a curated surface of the internal packages so
// downstream users need a single import:
//
//	import "gskew"
//
//	spec, _ := gskew.BenchmarkByName("groff")
//	branches, _ := gskew.Materialize(spec, gskew.WorkloadConfig{Scale: 0.05})
//	p := gskew.MustGSkewed(gskew.GSkewedConfig{BankBits: 12, HistoryBits: 8})
//	res, _ := gskew.Run(branches, p, gskew.RunOptions{})
//	fmt.Printf("miss rate: %.2f%%\n", res.MissPercent())
//
// Three layers are exposed:
//
//   - Predictors: every organisation the paper studies (gshare,
//     gselect, bimodal, gskewed, enhanced gskewed, an ideal unaliased
//     table, a fully-associative LRU table) plus the future-work
//     extensions (per-address two-level schemes, chooser hybrids).
//   - Workloads: the six IBS-like synthetic benchmarks and the
//     building blocks for custom traces.
//   - Experiments: every table and figure of the paper, regenerable
//     programmatically (the cmd/experiments tool is a thin wrapper).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package gskew

import (
	"io"

	"gskew/internal/experiments"
	"gskew/internal/predictor"
	"gskew/internal/sim"
	"gskew/internal/trace"
	"gskew/internal/workload"
)

// Predictor is a dynamic conditional-branch predictor. See the
// constructors below for the available organisations.
type Predictor = predictor.Predictor

// Spec is the unified predictor configuration: every organisation in
// the repo can be described, built, printed and parsed through it.
// See the predictor package docs for the per-family fields and the
// canonical string grammar ("gshare:n=14,k=12,ctr=2").
type Spec = predictor.Spec

// ParseSpec parses a canonical spec string ("family:key=value,...").
func ParseSpec(text string) (Spec, error) { return predictor.ParseSpec(text) }

// MustParseSpec parses a spec string and builds the predictor,
// panicking on errors — for tests, examples and literals.
func MustParseSpec(text string) Predictor { return predictor.MustParseSpec(text) }

// MustSpec builds s, panicking on configuration errors.
func MustSpec(s Spec) Predictor { return predictor.MustSpec(s) }

// GSkewedConfig parameterises the skewed branch predictor — the
// paper's contribution.
type GSkewedConfig = predictor.Config

// UpdatePolicy selects partial or total update for skewed predictors.
type UpdatePolicy = predictor.UpdatePolicy

// Update policies (section 4.1 of the paper). Partial update is the
// paper's recommendation.
const (
	PartialUpdate = predictor.PartialUpdate
	TotalUpdate   = predictor.TotalUpdate
)

// NewGSkewed builds a skewed branch predictor.
func NewGSkewed(cfg GSkewedConfig) (*predictor.GSkewed, error) { return predictor.NewGSkewed(cfg) }

// MustGSkewed is NewGSkewed, panicking on configuration errors.
func MustGSkewed(cfg GSkewedConfig) *predictor.GSkewed { return predictor.MustGSkewed(cfg) }

// NewGShare returns a 2^n-entry gshare predictor with k history bits
// and counterBits-wide cells.
func NewGShare(n, k, counterBits uint) Predictor {
	return predictor.MustSpec(predictor.Spec{Family: "gshare", N: n, Hist: k, Ctr: counterBits})
}

// NewGSelect returns a 2^n-entry gselect predictor.
func NewGSelect(n, k, counterBits uint) Predictor {
	return predictor.MustSpec(predictor.Spec{Family: "gselect", N: n, Hist: k, Ctr: counterBits})
}

// NewBimodal returns a 2^n-entry bimodal (address-indexed) predictor.
func NewBimodal(n, counterBits uint) Predictor {
	return predictor.MustSpec(predictor.Spec{Family: "bimodal", N: n, Ctr: counterBits})
}

// NewUnaliased returns the ideal infinite predictor table of Table 2.
func NewUnaliased(k, counterBits uint) *predictor.Unaliased {
	return predictor.NewUnaliased(k, counterBits)
}

// NewAssocLRU returns the fully-associative tagged LRU reference
// predictor of Figure 8.
func NewAssocLRU(entries int, k, counterBits uint) Predictor {
	return predictor.NewAssocLRU(entries, k, counterBits)
}

// NewHybrid combines two predictors with a McFarling-style chooser.
func NewHybrid(a, b Predictor, chooserBits uint) (Predictor, error) {
	return predictor.NewHybrid(a, b, chooserBits)
}

// NewTwoBcGSkew returns the 2Bc-gskew hybrid — the Alpha EV8
// descendant of the paper's predictor: four 2^n-entry tables (bimodal,
// two skewed history banks with histShort/histLong history bits, and a
// meta chooser).
func NewTwoBcGSkew(n, histShort, histLong uint) (Predictor, error) {
	return (predictor.Spec{Family: "2bcgskew", N: n, HistShort: histShort, Hist: histLong}).New()
}

// NewAgree returns the agree predictor (Sprangle et al., ISCA 1997),
// a contemporaneous anti-aliasing baseline.
func NewAgree(n, k, biasBits, counterBits uint) (Predictor, error) {
	return (predictor.Spec{Family: "agree", N: n, Hist: k, Bias: biasBits, Ctr: counterBits}).New()
}

// NewBiMode returns the bi-mode predictor (Lee et al., MICRO 1997),
// a contemporaneous anti-aliasing baseline.
func NewBiMode(n, k, choiceBits, counterBits uint) (Predictor, error) {
	return (predictor.Spec{Family: "bimode", N: n, Hist: k, Choice: choiceBits, Ctr: counterBits}).New()
}

// NewPAs returns a per-address two-level predictor (Yeh/Patt PAs).
func NewPAs(bhtBits, localK, phtBits, counterBits uint) (Predictor, error) {
	return (predictor.Spec{Family: "pas", BHT: bhtBits, Local: localK, N: phtBits, Ctr: counterBits}).New()
}

// Branch is one dynamic branch event. PC is a word address (byte
// address >> 2); unconditional branches are always taken and only
// contribute to the global history.
type Branch = trace.Branch

// Branch kinds.
const (
	Conditional   = trace.Conditional
	Unconditional = trace.Unconditional
)

// WorkloadSpec describes one of the bundled IBS-like benchmarks.
type WorkloadSpec = workload.Spec

// WorkloadConfig adjusts workload realisation; Scale 1.0 reproduces
// the paper's dynamic trace lengths.
type WorkloadConfig = workload.Config

// Benchmarks returns the six-benchmark suite mirroring the paper's
// Table 1 (groff, gs, mpeg_play, nroff, real_gcc, verilog).
func Benchmarks() []WorkloadSpec { return workload.Benchmarks() }

// BenchmarkByName returns the spec of a named benchmark.
func BenchmarkByName(name string) (WorkloadSpec, error) { return workload.ByName(name) }

// Materialize generates a benchmark's branch trace into memory.
func Materialize(spec WorkloadSpec, cfg WorkloadConfig) ([]Branch, error) {
	return workload.Materialize(spec, cfg)
}

// RunOptions adjusts a simulation run (first-use exclusion, history
// override, periodic state flushes).
type RunOptions = sim.Options

// Result aggregates one simulation run.
type Result = sim.Result

// Run drives a predictor over a branch trace using the paper's
// methodology: the runner owns the global-history register,
// unconditional branches enter the history but are not predicted.
func Run(branches []Branch, p Predictor, opts RunOptions) (Result, error) {
	return sim.RunBranches(branches, p, opts)
}

// Compare runs several predictors over the same trace.
func Compare(branches []Branch, preds []Predictor, opts RunOptions) ([]Result, error) {
	return sim.Compare(branches, preds, opts)
}

// Experiment regenerates one of the paper's tables or figures.
type Experiment = experiments.Experiment

// ExperimentContext configures experiment runs (workload scale,
// benchmark subset) and caches generated traces.
type ExperimentContext = experiments.Context

// Experiments lists every regenerable artifact: table1, table2,
// fig1..fig12, ablation-*, ext-*.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns one experiment by id (e.g. "fig5").
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// RunExperiment runs one experiment and writes its result as an
// aligned text table to w.
func RunExperiment(id string, ctx *ExperimentContext, w io.Writer) error {
	e, err := experiments.ByID(id)
	if err != nil {
		return err
	}
	result, err := e.Run(ctx)
	if err != nil {
		return err
	}
	return result.WriteText(w)
}
