package gskew_test

import (
	"encoding/json"
	"os"
	"testing"
)

// The committed benchmark snapshots are artifacts with claims
// attached: the block decoder is faster than the per-record one, and
// the bitsliced group kernel beats the scalar kernels per lane. These
// tests re-assert those relations from the snapshots themselves, so a
// regression that survives into a regenerated BENCH_*.json fails the
// suite rather than silently shipping. All comparisons are within one
// snapshot (one machine, one run), never across files.

// benchSnapshot mirrors the cmd/benchjson document shape.
type benchSnapshot struct {
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

func loadSnapshot(t *testing.T, path string) map[string]float64 {
	t.Helper()
	ns, _ := loadSnapshotFull(t, path)
	return ns
}

func loadSnapshotFull(t *testing.T, path string) (ns map[string]float64, allocs map[string]int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v (regenerate with `make bench`)", path, err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	ns = make(map[string]float64, len(snap.Benchmarks))
	allocs = make(map[string]int64, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		ns[b.Name] = b.NsPerOp
		allocs[b.Name] = b.AllocsPerOp
	}
	return ns, allocs
}

// faster asserts ns[a] < ns[b] within one snapshot.
func faster(t *testing.T, ns map[string]float64, a, b string) {
	t.Helper()
	na, oka := ns[a]
	nb, okb := ns[b]
	if !oka || !okb {
		t.Fatalf("snapshot missing %q (%v) or %q (%v); regenerate with `make bench`", a, oka, b, okb)
	}
	if na >= nb {
		t.Errorf("%s (%.4g ns/op) is not faster than %s (%.4g ns/op)", a, na, b, nb)
	}
}

// TestBenchSnapshotTraceDecode: the block decoder must beat the
// per-record decoder per decoded record.
func TestBenchSnapshotTraceDecode(t *testing.T) {
	ns := loadSnapshot(t, "BENCH_kernel.json")
	faster(t, ns, "TraceDecode/batch", "TraceDecode/next")
}

// TestBenchSnapshotStepBatch64: the bitsliced group kernel's ns/op is
// per lane-step, directly comparable to the scalar StepBatch ns/op
// per step. At 8 and 64 lanes it must beat the scalar kernel of the
// same predictor shape.
func TestBenchSnapshotStepBatch64(t *testing.T) {
	ns := loadSnapshot(t, "BENCH_kernel.json")
	for _, shape := range []string{"gshare16k", "egskew3x4k"} {
		scalar := "KernelStepBatch/" + shape
		for _, lanes := range []string{"lanes8", "lanes64"} {
			faster(t, ns, "KernelStepBatch64/"+shape+"/"+lanes, scalar)
		}
	}
}

// TestBenchSnapshotSim: the whole-trace snapshot must carry the
// segmented wall-clock sweep and show the bitsliced sweep beating the
// scalar-kernel sweep per branch per predictor.
func TestBenchSnapshotSim(t *testing.T) {
	ns := loadSnapshot(t, "BENCH_sim.json")
	for _, name := range []string{
		"SimSegmented/K1", "SimSegmented/K2", "SimSegmented/K4", "SimSegmented/K8",
	} {
		if _, ok := ns[name]; !ok {
			t.Errorf("snapshot missing %q; regenerate with `make bench`", name)
		}
	}
	faster(t, ns, "SimBitsliced/lanes64", "SimBitsliced/lanes1")
}

// serveSnapshot mirrors cmd/predload's sweep report (BENCH_serve.json).
type serveSnapshot struct {
	ColdP50US int64 `json:"cold_p50_us"`
	CachedP50 int64 `json:"cached_p50_us"`
	Passes    []struct {
		Pass    int     `json:"pass"`
		HitRate float64 `json:"hit_rate"`
		P50US   int64   `json:"p50_us"`
		P99US   int64   `json:"p99_us"`
	} `json:"passes"`
	Identical bool `json:"bodies_identical"`
}

// TestBenchSnapshotServe: the service snapshot must show the content-
// addressed store doing its job — a cached cell is served faster than
// a cold simulation, the zipfian hit rate rises pass over pass as the
// working set fills in, and every response body in the run was
// byte-identical per cell.
func TestBenchSnapshotServe(t *testing.T) {
	data, err := os.ReadFile("BENCH_serve.json")
	if err != nil {
		t.Fatalf("reading BENCH_serve.json: %v (regenerate with `make bench`)", err)
	}
	var snap serveSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("parsing BENCH_serve.json: %v", err)
	}
	if !snap.Identical {
		t.Fatal("bodies_identical = false; a cell's response bytes varied within the run")
	}
	if snap.ColdP50US <= 0 || snap.CachedP50 <= 0 {
		t.Fatalf("latency quantiles missing (cold_p50_us=%d cached_p50_us=%d); regenerate with `make bench`", snap.ColdP50US, snap.CachedP50)
	}
	if snap.CachedP50 >= snap.ColdP50US {
		t.Errorf("cached p50 (%d us) is not faster than cold p50 (%d us)", snap.CachedP50, snap.ColdP50US)
	}
	if len(snap.Passes) < 2 {
		t.Fatalf("snapshot has %d passes, want at least 2 for a hit-rate curve", len(snap.Passes))
	}
	for i := 1; i < len(snap.Passes); i++ {
		prev, cur := snap.Passes[i-1], snap.Passes[i]
		if cur.HitRate < prev.HitRate {
			t.Errorf("hit rate fell from %.3f (pass %d) to %.3f (pass %d); the zipfian working set should only fill in",
				prev.HitRate, prev.Pass, cur.HitRate, cur.Pass)
		}
	}
	first, last := snap.Passes[0], snap.Passes[len(snap.Passes)-1]
	if last.HitRate <= first.HitRate {
		t.Errorf("hit rate did not rise across passes (%.3f -> %.3f)", first.HitRate, last.HitRate)
	}
}

// TestBenchSnapshotTraceCodec: the block-columnar decode must be
// strictly faster than the varint NextBatch path, the mmap columnar
// path must be at least as fast as columnar-over-bufio (it skips the
// copy into the reader's staging buffer), and the steady-state batch
// paths must not allocate.
func TestBenchSnapshotTraceCodec(t *testing.T) {
	ns, allocs := loadSnapshotFull(t, "BENCH_trace.json")
	faster(t, ns, "TraceCodec/columnar-batch", "TraceCodec/varint-batch")
	faster(t, ns, "TraceCodec/mmap-columnar", "TraceCodec/mmap-varint")
	a, ok := ns["TraceCodec/mmap-columnar"]
	b, okb := ns["TraceCodec/columnar-batch"]
	if !ok || !okb {
		t.Fatalf("snapshot missing mmap-columnar (%v) or columnar-batch (%v); regenerate with `make bench`", ok, okb)
	}
	if a > b {
		t.Errorf("TraceCodec/mmap-columnar (%.4g ns/op) is slower than TraceCodec/columnar-batch (%.4g ns/op)", a, b)
	}
	for _, name := range []string{
		"TraceCodec/varint-batch", "TraceCodec/columnar-batch",
		"TraceCodec/mmap-varint", "TraceCodec/mmap-columnar",
	} {
		if n, ok := allocs[name]; !ok {
			t.Errorf("snapshot missing %q; regenerate with `make bench`", name)
		} else if n != 0 {
			t.Errorf("%s allocates %d allocs/op; the batch decode paths must be allocation-free", name, n)
		}
	}
}
